"""Tests for tiled-loop code generation (repro.kernels.codegen)."""

import numpy as np
import pytest

from repro.core.loopnest import ArrayRef, LoopNest, LoopNestError
from repro.core.tiling import TileShape, solve_tiling
from repro.kernels.codegen import compile_kernel, generate_tiled_source, run_generated
from repro.kernels.naive import allocate_arrays, execute_reference
from repro.library.problems import (
    batched_matmul,
    matmul,
    matvec,
    mttkrp,
    nbody,
    pointwise_conv,
)

NESTS = [
    matmul(7, 6, 5),
    matvec(9, 8),
    nbody(6, 7),
    pointwise_conv(2, 3, 4, 3, 2),
    mttkrp(4, 3, 5, 2),
    batched_matmul(2, 4, 3, 5),
]


def _fresh(nest, arrays):
    out = next(a.name for a in nest.arrays if a.is_output)
    fresh = {k: v.copy() for k, v in arrays.items()}
    fresh[out] = np.zeros_like(arrays[out])
    return fresh


class TestGeneratedKernels:
    @pytest.mark.parametrize("nest", NESTS, ids=lambda n: n.name)
    def test_matches_reference(self, nest):
        arrays = allocate_arrays(nest, rng=np.random.default_rng(11))
        expected = execute_reference(nest, _fresh(nest, arrays))
        sol = solve_tiling(nest, 20, budget="aggregate")
        got = run_generated(nest, sol.tile, _fresh(nest, arrays))
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    @pytest.mark.parametrize("order", [(0, 1, 2), (2, 0, 1), (1, 2, 0)])
    def test_order_invariance(self, order):
        nest = matmul(8, 8, 8)
        arrays = allocate_arrays(nest, rng=np.random.default_rng(5))
        tile = TileShape(nest=nest, blocks=(3, 4, 5))
        expected = execute_reference(nest, _fresh(nest, arrays))
        got = run_generated(nest, tile, _fresh(nest, arrays), order=order)
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_callable_signature(self):
        nest = matmul(4, 4, 4)
        tile = TileShape(nest=nest, blocks=(2, 2, 2))
        kernel = compile_kernel(nest, tile)
        C = np.zeros((4, 4))
        A = np.eye(4)
        B = np.arange(16.0).reshape(4, 4)
        out = kernel(C, A, B)
        assert out is C
        np.testing.assert_allclose(C, B)


class TestGeneratedSource:
    def test_structure(self):
        nest = matmul(10, 9, 8)
        tile = TileShape(nest=nest, blocks=(5, 3, 4))
        src = generate_tiled_source(nest, tile, func_name="mm_tiled")
        assert "def mm_tiled(C, A, B):" in src
        assert "for x10 in range(0, 10, 5):" in src
        assert "for x20 in range(0, 9, 3):" in src
        assert "for x30 in range(0, 8, 4):" in src
        assert "_einsum('ab,bc->ac'" in src
        # Edge tiles handled by min().
        assert "min(x20 + 3, 9)" in src

    def test_docstring_mentions_tile(self):
        nest = matmul(10, 9, 8)
        src = generate_tiled_source(nest, TileShape(nest=nest, blocks=(5, 3, 4)))
        assert "(5, 3, 4)" in src

    def test_source_is_valid_python(self):
        nest = mttkrp(4, 4, 4, 4)
        src = generate_tiled_source(nest, TileShape(nest=nest, blocks=(2, 2, 2, 2)))
        compile(src, "<test>", "exec")  # must not raise

    def test_multi_output_rejected(self):
        nest = LoopNest(
            "bad",
            ("i",),
            (4,),
            (
                ArrayRef("X", (0,), is_output=True),
                ArrayRef("Y", (0,), is_output=True),
            ),
        )
        with pytest.raises(LoopNestError):
            generate_tiled_source(nest, TileShape(nest=nest, blocks=(2,)))

    def test_scalar_output_uses_ellipsis(self):
        from repro.library.problems import dot_product

        nest = dot_product(8)
        src = generate_tiled_source(nest, TileShape(nest=nest, blocks=(4,)))
        assert "s[...]" in src
        # And it runs correctly.
        arrays = allocate_arrays(nest, rng=np.random.default_rng(2))
        expected = execute_reference(nest, _fresh(nest, arrays))
        got = run_generated(nest, TileShape(nest=nest, blocks=(4,)), _fresh(nest, arrays))
        np.testing.assert_allclose(got, expected, rtol=1e-10)
