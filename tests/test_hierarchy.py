"""Tests for multi-level hierarchy tilings (repro.core.hierarchy)."""

from fractions import Fraction as F

import pytest

from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling
from repro.core.tiling import solve_tiling
from repro.library.problems import matmul, mttkrp, nbody, pointwise_conv


class TestMemoryHierarchy:
    def test_valid(self):
        h = MemoryHierarchy(capacities=(64, 1024, 2**16), name="3level")
        assert h.levels == 3
        assert "64 < 1024" in h.describe()

    def test_must_increase(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(capacities=(64, 64))
        with pytest.raises(ValueError):
            MemoryHierarchy(capacities=(1024, 64))

    def test_nonempty_and_min_size(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(capacities=())
        with pytest.raises(ValueError):
            MemoryHierarchy(capacities=(1,))


class TestHierarchicalTiling:
    H3 = MemoryHierarchy(capacities=(2**8, 2**12, 2**16))

    def test_matmul_power_of_two_levels(self):
        ht = solve_hierarchical_tiling(matmul(1024, 1024, 1024), self.H3)
        assert [lvl.tile.blocks for lvl in ht.levels] == [
            (16, 16, 16),
            (64, 64, 64),
            (256, 256, 256),
        ]

    def test_nesting_invariant(self):
        for nest in [
            matmul(512, 512, 8),
            nbody(4096, 64),
            pointwise_conv(8, 16, 32, 16, 16),
            mttkrp(128, 128, 128, 8),
        ]:
            ht = solve_hierarchical_tiling(nest, self.H3)
            for inner, outer in zip(ht.levels, ht.levels[1:]):
                assert all(
                    a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks)
                ), nest.name

    def test_per_level_feasibility(self):
        for nest in [matmul(512, 512, 8), nbody(4096, 64)]:
            ht = solve_hierarchical_tiling(nest, self.H3)
            for lvl in ht.levels:
                assert lvl.tile.is_feasible(lvl.capacity, "per-array"), nest.name

    def test_matches_single_level_solution(self):
        # With power-of-two data, each level's tile should equal the
        # independent two-level solution (nesting constraints slack).
        nest = matmul(2**10, 2**10, 2**10)
        ht = solve_hierarchical_tiling(nest, self.H3)
        for lvl in ht.levels:
            single = solve_tiling(nest, lvl.capacity)
            assert lvl.tile.volume == single.tile.volume

    def test_small_bound_propagates_through_levels(self):
        # L3 = 8 caps every level's third block at 8.
        ht = solve_hierarchical_tiling(matmul(2**10, 2**10, 8), self.H3)
        for lvl in ht.levels:
            assert lvl.tile.blocks[2] <= 8

    def test_level_bounds_attached(self):
        ht = solve_hierarchical_tiling(matmul(2**10, 2**10, 2**10), self.H3)
        ks = [lvl.lower_bound.k_hat for lvl in ht.levels]
        assert ks == [F(3, 2)] * 3
        assert ht.levels[0].lower_bound.hbl_words > ht.levels[2].lower_bound.hbl_words

    def test_aggregate_budget(self):
        ht = solve_hierarchical_tiling(
            matmul(2**10, 2**10, 2**10), self.H3, budget="aggregate"
        )
        for lvl in ht.levels:
            assert lvl.tile.total_footprint() <= lvl.capacity

    def test_aggregate_too_small(self):
        with pytest.raises(ValueError):
            solve_hierarchical_tiling(
                matmul(4, 4, 4), MemoryHierarchy(capacities=(2, 8)), budget="aggregate"
            )

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            solve_hierarchical_tiling(matmul(4, 4, 4), self.H3, budget="bogus")

    def test_summary(self):
        ht = solve_hierarchical_tiling(matmul(64, 64, 64), self.H3)
        text = ht.summary()
        assert "L1" in text and "L3" in text
        assert ht.tile_at(0).blocks == ht.levels[0].tile.blocks

    def test_single_level_degenerates_to_solve_tiling(self):
        nest = matmul(2**8, 2**8, 2**8)
        ht = solve_hierarchical_tiling(nest, MemoryHierarchy(capacities=(2**10,)))
        single = solve_tiling(nest, 2**10)
        assert ht.levels[0].tile.volume == single.tile.volume


class TestNestedLPEdgeCases:
    """Degenerate capacity stacks must relax to slack, never raise."""

    def test_equal_capacity_adjacent_aggregate(self):
        # The grown level-1 tile packs the sum-of-footprints budget with
        # individual footprints above M/n; the next (barely larger)
        # level's effective capacity rows must go slack, not infeasible.
        nest = matmul(16, 16, 16)
        ht = solve_hierarchical_tiling(
            nest, MemoryHierarchy(capacities=(300, 301)), budget="aggregate"
        )
        inner, outer = ht.levels
        assert all(a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks))
        for lvl in ht.levels:
            assert lvl.tile.total_footprint() <= lvl.capacity

    def test_adjacent_capacities_sweep_never_raises(self):
        nest = matmul(16, 16, 16)
        for m in range(250, 320):
            ht = solve_hierarchical_tiling(
                nest, MemoryHierarchy(capacities=(m, m + 1)), budget="aggregate"
            )
            inner, outer = ht.levels
            assert all(a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks))

    def test_huge_top_level_is_whole_nest(self):
        # A capacity at or above the full iteration-space footprint makes
        # every constraint slack: the level tile is the whole nest.
        nest = matmul(16, 16, 16)
        ht = solve_hierarchical_tiling(
            nest, MemoryHierarchy(capacities=(64, 2**30))
        )
        assert ht.levels[1].tile.blocks == nest.bounds

    def test_all_levels_above_footprint(self):
        nest = matmul(12, 12, 12)
        ht = solve_hierarchical_tiling(
            nest, MemoryHierarchy(capacities=(10**6, 10**7)), budget="aggregate"
        )
        for lvl in ht.levels:
            assert lvl.tile.blocks == nest.bounds

    def test_capacity_exactly_at_footprint(self):
        nest = matmul(16, 16, 16)
        # per-array: each array's footprint is 256 at the whole nest.
        ht = solve_hierarchical_tiling(nest, MemoryHierarchy(capacities=(256, 257)))
        assert ht.levels[0].tile.blocks == nest.bounds
        assert ht.levels[1].tile.blocks == nest.bounds
