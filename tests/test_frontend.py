"""Frontend ingestion: einsum strings, programs, bands, stencils.

The tentpole contracts, pinned here:

* **Twin identity** — einsum-ingested matmul/MTTKRP/batched-matmul are
  *bit-identical* (``==``, and ``to_json`` equal) to their hand-built
  library counterparts, hence share one canonical structure and one
  plan-cache entry.
* **Band decomposition** — an imperfect program splits into maximal
  perfect projective bands: consecutive same-loop-set statements fuse,
  loop-set changes split, and a >=3-statement program with two
  structurally identical bands shows >=1 warm cross-band cache hit in
  the planner stats.
* **Halo normalization** — constant-offset stencil accesses lower to
  projective bands (offsets recorded as halo, same-projection write +
  reads merged into one output ref, true aliases renamed), and the
  batched trace engine agrees with the reference engine on the result.
* **Pointered errors** — statement syntax errors carry a caret under
  the offending character.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import ProgramRequest, RequestError, Session
from repro.core.canonical import canonicalize
from repro.core.parser import ParseError, parse_statement
from repro.frontend import (
    FrontendError,
    einsum_nest,
    halo_extents,
    normalize_accesses,
    parse_einsum,
    parse_program,
    plan_program,
    split_bands,
)
from repro.library.problems import build_problem
from repro.machine.model import MachineModel
from repro.plan import Planner
from repro.simulate.trace_sim import run_trace_simulation

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestEinsumParsing:
    def test_matmul_spec(self):
        spec = parse_einsum("ik,kj->ij")
        assert spec.operand_indices == (("i", "k"), ("k", "j"))
        assert spec.output_indices == ("i", "j")
        assert spec.operand_names == ("A", "B")
        assert spec.output_name == "Out"
        assert spec.loop_order() == ("i", "k", "j")  # operands first

    def test_spaced_multichar_indices(self):
        spec = parse_einsum("batch row, batch col -> row col")
        assert spec.operand_indices == (("batch", "row"), ("batch", "col"))
        assert spec.output_indices == ("row", "col")

    def test_statement_rendering(self):
        spec = parse_einsum("ik,kj->ij", operands=("A", "B"), output="C")
        assert spec.statement() == "C[i,j] += A[i,k] * B[k,j]"

    def test_rejects_implicit_output(self):
        with pytest.raises(FrontendError, match="no '->'"):
            parse_einsum("ik,kj")

    def test_rejects_double_arrow(self):
        with pytest.raises(FrontendError, match="more than one"):
            parse_einsum("ik->kj->ij")

    def test_rejects_repeated_index(self):
        # A trace/diagonal is not a projective access.
        with pytest.raises(FrontendError, match="projective"):
            parse_einsum("ii->i")

    def test_rejects_orphan_output_index(self):
        with pytest.raises(FrontendError, match="no operand"):
            parse_einsum("ik,kj->iz")

    def test_rejects_duplicate_array_names(self):
        with pytest.raises(FrontendError, match="distinct"):
            parse_einsum("ik,kj->ij", operands=("A", "A"))

    def test_rejects_missing_sizes(self):
        with pytest.raises(FrontendError, match="sizes"):
            einsum_nest("ik,kj->ij", {"i": 4, "k": 4})

    def test_rejects_unused_loop_names(self):
        with pytest.raises(FrontendError, match="unused"):
            einsum_nest("ik,kj->ij", {"i": 4, "k": 4, "j": 4}, loop_names={"z": "x"})


class TestEinsumTwins:
    """Einsum ingestion reproduces the hand-built library nests bit for bit."""

    TWINS = {
        "matmul": dict(
            spec="ik,kj->ij",
            sizes={"i": 512, "k": 512, "j": 512},
            operands=("A", "B"),
            output="C",
            loop_names={"i": "x1", "k": "x2", "j": "x3"},
        ),
        "mttkrp": dict(
            spec="ijk,jr,kr->ir",
            sizes={"i": 128, "j": 128, "k": 128, "r": 32},
            operands=("T", "B", "C"),
            output="A",
        ),
        "batched_matmul": dict(
            spec="bij,bjk->bik",
            sizes={"b": 16, "i": 128, "j": 128, "k": 128},
            operands=("A", "B_"),
            output="C",
        ),
    }

    @pytest.mark.parametrize("name", sorted(TWINS))
    def test_bit_identical_to_library(self, name):
        recipe = self.TWINS[name]
        twin = einsum_nest(
            recipe["spec"],
            recipe["sizes"],
            name=name,
            operands=recipe["operands"],
            output=recipe["output"],
            loop_names=recipe.get("loop_names"),
        )
        library = build_problem(name)
        assert twin == library
        assert twin.to_json() == library.to_json()

    @pytest.mark.parametrize("name", sorted(TWINS))
    def test_catalog_einsum_entries_match(self, name):
        assert build_problem(f"einsum_{name}") == build_problem(name)

    def test_twins_share_plan_cache_entry(self):
        planner = Planner()
        library = planner.plan(build_problem("matmul", (64, 64, 64)), 1024)
        twin = planner.plan(
            einsum_nest(
                "ik,kj->ij", {"i": 64, "k": 64, "j": 64}, name="matmul",
                operands=("A", "B"), output="C",
                loop_names={"i": "x1", "k": "x2", "j": "x3"},
            ),
            1024,
        )
        assert library.cache_hit is False and twin.cache_hit is True
        assert twin.canonical_key == library.canonical_key
        plan_json = twin.to_json()
        plan_json.pop("cache_hit")
        expected = library.to_json()
        expected.pop("cache_hit")
        assert plan_json == expected  # byte-identical plan payload


@st.composite
def einsum_specs(draw):
    """Random projective einsum specs over a small index alphabet."""
    alphabet = "ijklmn"
    num_operands = draw(st.integers(1, 3))
    operands = []
    for _ in range(num_operands):
        indices = draw(
            st.lists(st.sampled_from(alphabet), min_size=1, max_size=3, unique=True)
        )
        operands.append("".join(indices))
    used = sorted({ch for op in operands for ch in op})
    out_count = draw(st.integers(0, len(used)))
    output = "".join(draw(st.permutations(used))[:out_count])
    sizes = {ch: draw(st.integers(1, 32)) for ch in used}
    return ",".join(operands) + "->" + output, sizes


class TestEinsumProperties:
    @SETTINGS
    @given(spec_and_sizes=einsum_specs())
    def test_round_trip_and_canonical_stability(self, spec_and_sizes):
        spec, sizes = spec_and_sizes
        nest = einsum_nest(spec, sizes)
        # Loops cover exactly the used indices, in operand-first order.
        parsed = parse_einsum(spec)
        assert nest.loops == parsed.loop_order()
        assert nest.bounds == tuple(sizes[i] for i in parsed.loop_order())
        # Re-ingesting the rendered statement form reproduces the same
        # canonical structure (the program path and the einsum path agree).
        program = parse_program([parsed.statement()], sizes, name="roundtrip")
        (band,) = split_bands(program)
        assert canonicalize(band.nest).form.key() == canonicalize(nest).form.key()

    @SETTINGS
    @given(spec_and_sizes=einsum_specs())
    def test_loop_renames_preserve_canonical_key(self, spec_and_sizes):
        spec, sizes = spec_and_sizes
        nest = einsum_nest(spec, sizes)
        renamed = einsum_nest(
            spec, sizes, loop_names={ch: f"x_{ch}" for ch in sizes}
        )
        assert canonicalize(renamed).form.key() == canonicalize(nest).form.key()


class TestParserCarets:
    def test_affine_index_points_at_expression(self):
        with pytest.raises(ParseError) as err:
            parse_statement("C[i,k] += A[i+j]")
        message = str(err.value)
        lines = message.splitlines()
        assert len(lines) == 3  # message, statement, caret line
        assert lines[2].rstrip().endswith("^")
        assert lines[1][lines[2].index("^")] == "i"  # caret under 'i+j'

    def test_offset_rejected_without_flag_but_allowed_with(self):
        with pytest.raises(ParseError, match="projective"):
            parse_statement("A[t,i] = A[t-1,i]")
        parsed = parse_statement("A[t,i] = A[t-1,i]", allow_offsets=True)
        assert parsed.inputs[0].offsets == (-1, 0)

    def test_blank_statement(self):
        with pytest.raises(ParseError, match="empty statement"):
            parse_statement("   ")


class TestProgramParsing:
    def test_text_and_list_forms_agree(self):
        bounds = {"i": 8, "j": 8}
        from_text = parse_program("S[i,j] = A[i,j]\n T[i,j] = S[i,j] * S[i,j]", bounds)
        from_list = parse_program(["S[i,j] = A[i,j]", "T[i,j] = S[i,j] * S[i,j]"], bounds)
        assert [s.text for s in from_text.statements] == [
            s.text for s in from_list.statements
        ]

    def test_unused_bounds_dropped_and_sorted(self):
        program = parse_program("C[i] += A[i,j] * B[j]", {"j": 4, "i": 8, "z": 9})
        assert program.bounds == (("i", 8), ("j", 4))

    def test_missing_bound_rejected(self):
        with pytest.raises(FrontendError, match="no bounds"):
            parse_program("C[i] += A[i,j] * B[j]", {"i": 4})

    def test_empty_program_rejected(self):
        with pytest.raises(FrontendError, match="empty program"):
            parse_program(" ; ;\n", {"i": 4})

    def test_statement_errors_carry_index_and_caret(self):
        with pytest.raises(ParseError, match=r"statement 1:.*\n.*\n\s*\^"):
            parse_program("C[i] += A[i]; D[i] += A[i+j]", {"i": 4, "j": 4})

    def test_json_round_trip(self):
        program = parse_program(
            "S[i,j] = A[i,j]; C[i,k] += S[i,j] * W[j,k]",
            {"i": 8, "j": 8, "k": 8},
            name="pipe",
        )
        from repro.frontend import Program

        assert Program.from_json(program.to_json()) == program


class TestBandSplitting:
    def test_same_loop_set_fuses(self):
        program = parse_program(
            "S[i,j] = A[i,j] + B[i,j]; T[i,j] = S[i,j] * A[i,j]",
            {"i": 8, "j": 8},
        )
        (band,) = split_bands(program)
        assert band.statement_indices == (0, 1)
        # S is written by statement 0 and read by statement 1: one output ref.
        s_ref = band.nest.array("S")
        assert s_ref.is_output
        assert band.nest.array("T").is_output

    def test_loop_set_change_splits(self):
        program = parse_program(
            "S[i,j] = A[i,j]; C[i,k] += S[i,j] * W[j,k]; D[i,k] = C[i,k]",
            {"i": 8, "j": 8, "k": 8},
            name="pipe",
        )
        bands = split_bands(program)
        assert [b.statement_indices for b in bands] == [(0,), (1,), (2,)]
        assert [b.nest.name for b in bands] == [
            "pipe.band0", "pipe.band1", "pipe.band2",
        ]
        assert bands[1].nest.loops == ("i", "k", "j")  # first-appearance order

    def test_cross_statement_alias_renamed(self):
        program = parse_program(
            "S[i,j] = A[i,j]; T[i,j] = S[i,j] + A[j,i]",
            {"i": 8, "j": 8},
        )
        (band,) = split_bands(program)
        assert band.renames_map == {"A__2": "A"}
        assert band.nest.array("A").support == (0, 1)
        assert band.nest.array("A__2").support == (0, 1)

    def test_single_statement_band_matches_parse_nest(self):
        from repro.core.parser import parse_nest

        bounds = {"i": 8, "j": 8, "k": 8}
        program = parse_program("C[i,k] += A[i,j] * B[j,k]", bounds, name="mm")
        (band,) = split_bands(program)
        direct = parse_nest("C[i,k] += A[i,j] * B[j,k]", bounds, name="mm.band0")
        assert band.nest == direct


class TestStencilNormalization:
    def test_halo_extents(self):
        parsed = parse_statement(
            "A[t,i] = A[t-1,i-2] + A[t-1,i] + B[i]", allow_offsets=True
        )
        assert halo_extents(parsed) == {"A": (1, 2)}

    def test_normalize_merges_write_and_offset_reads(self):
        parsed = parse_statement(
            "A[t,i] = A[t-1,i-1] + A[t-1,i+1] + F[i]", allow_offsets=True
        )
        normalized, renames, halo = normalize_accesses(parsed.accesses)
        assert normalized == (
            ("A", ("t", "i"), True),
            ("F", ("i",), False),
        )
        assert renames == {}
        assert halo == {"A": (1, 1)}

    def test_affine_still_rejected(self):
        with pytest.raises(ParseError, match="projective"):
            parse_statement("A[i] = B[2i]", allow_offsets=True)

    @pytest.mark.parametrize(
        "name,sizes",
        [("jacobi1d_time", (4, 12)), ("jacobi2d", (3, 6, 6)), ("heat3d", (2, 5, 5, 5))],
    )
    def test_stencil_differential_batched_vs_reference(self, name, sizes):
        """The halo-normalized stencil bands simulate identically on
        the batched engine and the reference single-step simulator."""
        nest = build_problem(name, sizes)
        planner = Planner()
        plan = planner.plan(nest, 64, "per-array")
        machine = MachineModel(cache_words=64)
        batched = run_trace_simulation(nest, machine, tile=plan.tile, engine="batched")
        reference = run_trace_simulation(
            nest, machine, tile=plan.tile, engine="reference"
        )
        assert batched.total_words == reference.total_words
        assert batched.loads == reference.loads
        assert batched.stores == reference.stores

    def test_stencil_traffic_respects_bound(self):
        nest = build_problem("jacobi1d_time", (6, 24))
        planner = Planner()
        plan = planner.plan(nest, 32, "per-array")
        machine = MachineModel(cache_words=32)
        measured = run_trace_simulation(nest, machine, tile=plan.tile)
        assert plan.lower_bound is not None
        assert measured.total_words >= plan.lower_bound.value


class TestPlanProgram:
    def test_three_statement_program_shares_structure_warm(self):
        """>=3 statements -> >=2 bands, with a warm cross-band hit
        visible in both the deterministic payload and the live stats."""
        program = parse_program(
            "C[i,j] += A[i,k] * B[k,j]"
            "; V[i] = C[i,j] + U[j]"
            "; D[i,j] += C[i,k] * E[k,j]",
            {"i": 16, "j": 16, "k": 16},
            name="share",
        )
        planner = Planner()
        report = plan_program(program, 256, planner=planner)
        assert len(report.bands) >= 2
        sharing = report.structure_sharing()
        assert sharing["cross_band_structure_hits"] >= 1
        assert report.bands[2].shared_with == 0
        # Band 2 is matmul-shaped like band 0: its query hit the warm cache.
        stats = planner.stats.as_dict()
        assert stats["structure_hits"] >= 1
        assert stats["structure_solves"] == sharing["unique_structures"]

    def test_session_program_meta_reports_planner_delta(self):
        program_blob = {
            "program": {
                "name": "share",
                "bounds": {"i": 16, "j": 16, "k": 16},
                "statements": [
                    "C[i,j] += A[i,k] * B[k,j]",
                    "V[i] = C[i,j] + U[j]",
                    "D[i,j] += C[i,k] * E[k,j]",
                ],
            },
            "cache_words": 256,
        }
        session = Session(workers=0)
        cold = session.program(ProgramRequest.from_json(program_blob))
        assert cold.meta["cache_hit"] is False
        assert cold.meta["planner_delta"]["structure_hits"] >= 1  # cross-band
        warm = session.program(ProgramRequest.from_json(program_blob))
        assert warm.meta["cache_hit"] is True
        assert warm.meta["planner_delta"]["structure_solves"] == 0
        assert warm.payload == cold.payload

    def test_aggregate_lower_bound_sums_bands(self):
        program = parse_program(
            "S[i,j] = A[i,j]; C[i,k] += S[i,j] * W[j,k]",
            {"i": 16, "j": 16, "k": 16},
        )
        report = plan_program(program, 256, planner=Planner())
        assert report.aggregate_lower_bound_words == pytest.approx(
            sum(b.plan.lower_bound.value for b in report.bands)
        )

    def test_tuned_band_never_worse_than_seed(self):
        program = parse_program(
            "A[t,i] = A[t-1,i-1] + A[t-1,i] + A[t-1,i+1] + F[i]",
            {"t": 6, "i": 24},
            name="jac",
        )
        report = plan_program(program, 32, tune_budget=12, planner=Planner(), workers=0)
        (band,) = report.bands
        assert band.tuned is not None
        assert band.tuned.tuned_traffic_words <= band.tuned.seed_traffic_words
        assert band.tuned.tuned_ratio >= 1.0

    def test_payload_is_json_round_trippable_via_result(self):
        program = parse_program(
            "C[i,k] += A[i,j] * B[j,k]", {"i": 8, "j": 8, "k": 8}
        )
        result = Session(workers=0).program(
            ProgramRequest(program=program, cache_words=64, certificate=True)
        )
        assert json.loads(result.to_json_str())["payload"] == result.payload


class TestProgramRequestValidation:
    def test_needs_a_spelling(self):
        with pytest.raises(RequestError, match="one of"):
            ProgramRequest.from_json({"cache_words": 64})

    def test_einsum_needs_sizes(self):
        with pytest.raises(RequestError, match="sizes"):
            ProgramRequest.from_json({"einsum": "ik,kj->ij", "cache_words": 64})

    def test_cache_words_floor(self):
        with pytest.raises(RequestError, match=">= 2"):
            ProgramRequest.from_json(
                {"einsum": "i->i", "sizes": {"i": 4}, "cache_words": 1}
            )

    def test_aggregate_floor_names_the_band(self):
        with pytest.raises(RequestError, match="band0"):
            ProgramRequest.from_json(
                {
                    "statements": ["C[i,k] += A[i,j] * B[j,k]"],
                    "bounds": {"i": 4, "j": 4, "k": 4},
                    "cache_words": 2,
                    "budget": "aggregate",
                }
            )

    def test_tune_trace_guard_is_per_band(self):
        blob = {
            "statements": [
                "S[i,j] = A[i,j]",
                "C[i,k] += S[i,j] * W[j,k]",
            ],
            "bounds": {"i": 4096, "j": 4096, "k": 4096},
            "cache_words": 1024,
        }
        ProgramRequest.from_json(blob)  # analytic planning: no trace, fine
        with pytest.raises(RequestError, match="guard"):
            ProgramRequest.from_json({**blob, "tune_budget": 4})

    def test_round_trip(self):
        request = ProgramRequest.from_json(
            {
                "program": {
                    "name": "pipe",
                    "bounds": {"i": 8, "j": 8},
                    "statements": ["S[i,j] = A[i,j]"],
                },
                "cache_words": 64,
                "tune_budget": 4,
            }
        )
        assert ProgramRequest.from_json(request.to_json()) == request
