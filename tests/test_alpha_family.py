"""Tests for optimal-tile-family enumeration (§6.1's alpha family)."""

from fractions import Fraction as F

import pytest

from repro.core.alpha_family import optimal_tile_family
from repro.library.problems import matmul, nbody


class TestMatmulFamily:
    M = 2**16

    def test_unique_optimum_large_bounds(self):
        fam = optimal_tile_family(matmul(2**10, 2**10, 2**10), self.M)
        assert fam.is_unique
        assert fam.vertices == ((F(1, 2), F(1, 2), F(1, 2)),)

    def test_small_l3_family_endpoints(self):
        # beta = (5/8, 5/8, 1/4): optimal face is the segment between
        # (5/8, 3/8, 1/4) and (3/8, 5/8, 1/4) - the paper's alpha family
        # clipped to the actual beta1 cap.
        fam = optimal_tile_family(matmul(2**10, 2**10, 2**4), self.M)
        assert fam.exponent == F(5, 4)
        assert set(fam.vertices) == {
            (F(5, 8), F(3, 8), F(1, 4)),
            (F(3, 8), F(5, 8), F(1, 4)),
        }

    def test_paper_alpha_family_with_huge_l1_l2(self):
        # With beta1 = beta2 = 1 the paper's alpha=0 member (1-b3, b3, b3)
        # is a face vertex; the alpha=1 member (1/2, 1/2, b3) is the
        # *midpoint* of the face (between the vertex and its mirror), so
        # it is contained but not itself a vertex.
        fam = optimal_tile_family(
            matmul(2**16, 2**16, 2**4), self.M
        )  # beta1 = beta2 = 1, beta3 = 1/4
        assert fam.exponent == F(5, 4)
        assert (F(3, 4), F(1, 4), F(1, 4)) in fam.vertices  # (1-b3, b3, b3)
        assert fam.contains((F(1, 2), F(1, 2), F(1, 4)))  # (1/2, 1/2, b3)

    def test_interpolation_is_optimal(self):
        fam = optimal_tile_family(matmul(2**16, 2**16, 2**4), self.M)
        n = len(fam.vertices)
        uniform = [F(1, n)] * n
        lam = fam.interpolate(uniform)
        assert fam.contains(lam)
        assert sum(lam) == fam.exponent

    def test_alpha_parameterisation_matches_paper(self):
        # lambda(alpha) = (a/2 + (1-a)(1-b3), a/2 + (1-a) b3, b3).
        fam = optimal_tile_family(matmul(2**16, 2**16, 2**4), self.M)
        b3 = F(1, 4)
        for alpha in (F(0), F(1, 3), F(1, 2), F(1)):
            lam = (
                alpha / 2 + (1 - alpha) * (1 - b3),
                alpha / 2 + (1 - alpha) * b3,
                b3,
            )
            assert fam.contains(lam), alpha


class TestFamilyAPI:
    M = 2**12

    def test_interpolate_validation(self):
        fam = optimal_tile_family(matmul(2**6, 2**6, 2**6), self.M)
        with pytest.raises(ValueError):
            fam.interpolate([F(1, 2)] * (len(fam.vertices) + 1))
        with pytest.raises(ValueError):
            fam.interpolate(
                [F(2)] + [F(0)] * (len(fam.vertices) - 1)
                if len(fam.vertices) > 1
                else [F(2)]
            )

    def test_tile_at_is_feasible(self):
        fam = optimal_tile_family(matmul(2**10, 2**10, 2**2), self.M)
        n = len(fam.vertices)
        tile = fam.tile_at([F(1, n)] * n)
        assert tile.is_feasible(self.M, "per-array")

    def test_contains_rejects_suboptimal(self):
        fam = optimal_tile_family(matmul(2**6, 2**6, 2**6), self.M)
        assert not fam.contains((F(0), F(0), F(0)))
        assert not fam.contains((F(10), F(10), F(10)))
        assert not fam.contains((F(1, 2), F(1, 2)))

    def test_nbody_whole_space_vertex(self):
        # Everything fits (k = b1 + b2): unique vertex at (b1, b2).
        fam = optimal_tile_family(nbody(2**4, 2**4), 2**16)
        assert fam.vertices == ((F(1, 4), F(1, 4)),)

    def test_describe(self):
        fam = optimal_tile_family(matmul(2**6, 2**6, 2**6), self.M)
        assert "k_hat" in fam.describe()
