"""Theorem-3 tightness tests (§5): primal LP == dual LP, exactly."""

from fractions import Fraction as F

from repro.core.bounds import subset_exponent
from repro.core.duality import build_dual_lp, theorem3_certificate
from repro.library.problems import catalog, matmul


class TestTheorem3OnCatalog:
    def test_every_catalog_problem_is_tight(self):
        M = 2**12
        for name, nest in catalog().items():
            cert = theorem3_certificate(nest, M)
            assert cert.tight, f"{name}: {cert.summary()}"

    def test_certificate_fields(self):
        cert = theorem3_certificate(matmul(2**8, 2**8, 2**4), 2**16)
        assert cert.primal_value == cert.dual_value == F(5, 4)
        assert len(cert.lambdas) == 3
        assert len(cert.dual.zeta) == 3
        assert len(cert.dual.s) == 3
        assert "TIGHT" in cert.summary()

    def test_complementary_slackness_flag(self):
        cert = theorem3_certificate(matmul(2**8, 2**8, 2**4), 2**16)
        assert cert.complementary_slackness

    def test_various_cache_sizes(self):
        nest = matmul(2**6, 2**9, 2**3)
        for M in (2, 16, 97, 2**10, 2**20):
            assert theorem3_certificate(nest, M).tight, M


class TestDualEquivalences:
    def test_dual_lp_equals_full_subset_lp(self):
        # build_dual_lp (from LP dualisation) and build_subset_lp with
        # Q = all loops (from Theorem 2) must produce the same optimum.
        M = 2**10
        for nest in catalog().values():
            dual_opt = build_dual_lp(nest, M).solve().objective
            subset_opt = subset_exponent(nest, M, range(nest.depth))
            assert dual_opt == subset_opt, nest.name

    def test_dual_value_bounds_every_subset(self):
        # Strongest-bound property: the dual optimum is <= every
        # Theorem-2 subset bound.
        nest = matmul(2**9, 2**5, 2**2)
        M = 2**12
        full = theorem3_certificate(nest, M).dual_value
        from repro.util.subsets import all_subsets

        for Q in all_subsets(nest.depth):
            assert full <= subset_exponent(nest, M, Q)

    def test_dual_multipliers_price_small_loops(self):
        # For matmul with small L3, the binding loop bound must carry a
        # positive dual price (zeta_3 > 0) - the paper's beta3 term.
        cert = theorem3_certificate(matmul(2**10, 2**10, 2**3), 2**16)
        assert cert.dual.zeta[2] > 0
        assert cert.dual.zeta[0] == cert.dual.zeta[1] == 0
