"""Unit tests for the exact rational simplex (repro.core.fraction_lp)."""

from fractions import Fraction as F

import pytest

from repro.core.fraction_lp import LPError, solve_lp


class TestBasicSolves:
    def test_simple_min(self):
        # min x + y s.t. x + y >= 1  (as -x - y <= -1)
        sol = solve_lp([1, 1], A_ub=[[-1, -1]], b_ub=[-1])
        assert sol.is_optimal
        assert sol.objective == 1

    def test_simple_max(self):
        # max x + y s.t. x <= 2, y <= 3
        sol = solve_lp([1, 1], A_ub=[[1, 0], [0, 1]], b_ub=[2, 3], sense="max")
        assert sol.objective == 5
        assert sol.x == (2, 3)

    def test_fractional_optimum(self):
        # The matmul HBL LP: min s1+s2+s3, each pair sums >= 1.
        A = [[-1, -1, 0], [0, -1, -1], [-1, 0, -1]]
        sol = solve_lp([1, 1, 1], A_ub=A, b_ub=[-1, -1, -1])
        assert sol.objective == F(3, 2)
        assert sol.x == (F(1, 2), F(1, 2), F(1, 2))

    def test_equality_constraints(self):
        # min x + 2y s.t. x + y == 4, x <= 1
        sol = solve_lp([1, 2], A_ub=[[1, 0]], b_ub=[1], A_eq=[[1, 1]], b_eq=[4])
        assert sol.is_optimal
        assert sol.x == (1, 3)
        assert sol.objective == 7

    def test_zero_variable_problem(self):
        sol = solve_lp([], A_ub=None, b_ub=None)
        assert sol.is_optimal
        assert sol.objective == 0

    def test_no_constraints_bounded(self):
        sol = solve_lp([2, 3])
        assert sol.is_optimal
        assert sol.objective == 0
        assert sol.x == (0, 0)

    def test_no_constraints_unbounded(self):
        sol = solve_lp([-1, 0])
        assert sol.status == "unbounded"


class TestStatusDetection:
    def test_infeasible(self):
        # x >= 2 and x <= 1
        sol = solve_lp([1], A_ub=[[-1], [1]], b_ub=[-2, 1])
        assert sol.status == "infeasible"

    def test_unbounded(self):
        # max x with x unconstrained above
        sol = solve_lp([1], A_ub=[[-1]], b_ub=[0], sense="max")
        assert sol.status == "unbounded"

    def test_infeasible_bounds(self):
        sol = solve_lp([1], bounds=[(3, 2)])
        assert sol.status == "infeasible"

    def test_redundant_rows_ok(self):
        # Duplicate equality rows must not break phase 1 / basis cleanup.
        sol = solve_lp([1, 1], A_eq=[[1, 1], [1, 1], [2, 2]], b_eq=[2, 2, 4])
        assert sol.is_optimal
        assert sol.objective == 2


class TestBounds:
    def test_upper_bounds(self):
        sol = solve_lp([-1, -1], bounds=[(0, 5), (0, F(7, 2))])
        assert sol.objective == F(-17, 2)
        assert sol.x == (5, F(7, 2))

    def test_shifted_lower_bounds(self):
        # min x with x >= 3
        sol = solve_lp([1], bounds=[(3, None)])
        assert sol.objective == 3

    def test_negative_lower_bounds(self):
        sol = solve_lp([1], bounds=[(-4, None)])
        assert sol.objective == -4

    def test_free_variable(self):
        # min x + y s.t. x + y >= -10, x free, y >= 0
        sol = solve_lp([1, 1], A_ub=[[-1, -1]], b_ub=[10], bounds=[(None, None), (0, None)])
        assert sol.objective == -10

    def test_upper_bounded_only(self):
        # max x, x <= 7, no lower bound on x; constraint x >= 0 given as row
        sol = solve_lp([1], A_ub=[[-1]], b_ub=[0], bounds=[(None, 7)], sense="max")
        assert sol.objective == 7

    def test_fixed_variable_via_bounds(self):
        sol = solve_lp([1, 1], A_ub=[[-1, 0]], b_ub=[-1], bounds=[(0, None), (2, 2)])
        assert sol.objective == 3
        assert sol.x == (1, 2)


class TestDegenerate:
    def test_degenerate_vertex_terminates(self):
        # Classic degeneracy: multiple constraints through the origin.
        sol = solve_lp(
            [-1, -1, -1],
            A_ub=[[1, 1, 0], [1, 0, 1], [0, 1, 1], [1, 1, 1]],
            b_ub=[1, 1, 1, F(3, 2)],
        )
        assert sol.is_optimal
        assert sol.objective == F(-3, 2)

    def test_beale_cycling_example(self):
        # Beale's example that cycles under Dantzig's rule; Bland must terminate.
        c = [F(-3, 4), 150, F(-1, 50), 6]
        A = [
            [F(1, 4), -60, F(-1, 25), 9],
            [F(1, 2), -90, F(-1, 50), 3],
            [0, 0, 1, 0],
        ]
        b = [0, 0, 1]
        sol = solve_lp(c, A_ub=A, b_ub=b)
        assert sol.is_optimal
        assert sol.objective == F(-1, 20)


class TestValidation:
    def test_bad_sense(self):
        with pytest.raises(LPError):
            solve_lp([1], sense="maximize")

    def test_shape_mismatch(self):
        with pytest.raises(LPError):
            solve_lp([1, 1], A_ub=[[1]], b_ub=[1])

    def test_rhs_mismatch(self):
        with pytest.raises(LPError):
            solve_lp([1], A_ub=[[1]], b_ub=[1, 2])

    def test_bounds_mismatch(self):
        with pytest.raises(LPError):
            solve_lp([1, 1], bounds=[(0, None)])


class TestExactness:
    def test_huge_rationals(self):
        big = F(10**12, 10**12 + 1)
        sol = solve_lp([1], A_ub=[[-1]], b_ub=[-big])
        assert sol.objective == big

    def test_result_is_fraction(self):
        sol = solve_lp([1, 1], A_ub=[[-1, -1]], b_ub=[-1])
        assert all(isinstance(v, F) for v in sol.x)
        assert isinstance(sol.objective, F)
