"""Tests for the named-LP builder and its dual backends (repro.core.lp)."""

from fractions import Fraction as F

import pytest

from repro.core.fraction_lp import LPError
from repro.core.lp import LinearProgram


def _matmul_tiling_lp() -> LinearProgram:
    lp = LinearProgram(sense="max")
    for v in ("l1", "l2", "l3"):
        lp.add_variable(v, lo=0)
    lp.add_constraint("C", {"l1": 1, "l3": 1}, "<=", 1)
    lp.add_constraint("A", {"l1": 1, "l2": 1}, "<=", 1)
    lp.add_constraint("B", {"l2": 1, "l3": 1}, "<=", 1)
    lp.set_objective({"l1": 1, "l2": 1, "l3": 1})
    return lp


class TestBuilder:
    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_variable("x")

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint("c", {"y": 1}, "<=", 1)

    def test_unknown_variable_in_objective(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.set_objective({"y": 1})

    def test_bad_relation(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint("c", {"x": 1}, "<", 1)

    def test_bad_backend(self):
        lp = _matmul_tiling_lp()
        with pytest.raises(LPError):
            lp.solve(backend="gurobi")

    def test_pretty_contains_rows(self):
        text = _matmul_tiling_lp().pretty()
        assert "max" in text
        assert "[A]" in text and "[B]" in text and "[C]" in text


class TestBackends:
    def test_exact_matmul(self):
        report = _matmul_tiling_lp().solve(backend="exact")
        assert report.is_optimal
        assert report.objective == F(3, 2)
        assert report["l1"] == F(1, 2)

    def test_scipy_matmul(self):
        report = _matmul_tiling_lp().solve(backend="scipy")
        assert report.is_optimal
        assert abs(float(report.objective) - 1.5) < 1e-9

    def test_both_backends_agree(self):
        report = _matmul_tiling_lp().solve(backend="both")
        assert report.objective == F(3, 2)

    def test_infeasible_reported_by_both(self):
        lp = LinearProgram()
        lp.add_variable("x", lo=0)
        lp.add_constraint("lo", {"x": 1}, ">=", 2)
        lp.add_constraint("hi", {"x": 1}, "<=", 1)
        lp.set_objective({"x": 1})
        assert lp.solve(backend="exact").status == "infeasible"
        assert lp.solve(backend="scipy").status == "infeasible"
        assert lp.solve(backend="both").status == "infeasible"

    def test_unbounded_reported_by_both(self):
        lp = LinearProgram(sense="max")
        lp.add_variable("x", lo=0)
        lp.set_objective({"x": 1})
        assert lp.solve(backend="exact").status == "unbounded"
        assert lp.solve(backend="scipy").status == "unbounded"

    def test_equality_and_ge_rows(self):
        lp = LinearProgram(sense="min")
        lp.add_variable("x", lo=0)
        lp.add_variable("y", lo=0)
        lp.add_constraint("sum", {"x": 1, "y": 1}, "==", 4)
        lp.add_constraint("xmin", {"x": 1}, ">=", 1)
        lp.set_objective({"x": 2, "y": 1})
        report = lp.solve(backend="both")
        assert report.objective == 5
        assert report["x"] == 1 and report["y"] == 3

    def test_bounded_variables(self):
        lp = LinearProgram(sense="max")
        lp.add_variable("x", lo=0, hi=F(5, 2))
        lp.set_objective({"x": 1})
        report = lp.solve(backend="both")
        assert report.objective == F(5, 2)


class TestMatrixForm:
    def test_matrix_shapes(self):
        c, A_ub, b_ub, A_eq, b_eq, bounds = _matmul_tiling_lp().matrix_form()
        assert len(c) == 3
        assert len(A_ub) == 3 and len(b_ub) == 3
        assert A_eq == [] and b_eq == []
        assert len(bounds) == 3

    def test_ge_rows_are_negated(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint("c", {"x": 2}, ">=", 3)
        lp.set_objective({"x": 1})
        _, A_ub, b_ub, _, _, _ = lp.matrix_form()
        assert A_ub == [[-2]] and b_ub == [-3]
