"""Tests for the analytic executor and the trace-driven validator."""

import pytest

from repro.core.bounds import communication_lower_bound
from repro.core.tiling import TileShape, solve_tiling
from repro.library.problems import matmul, matvec, nbody, pointwise_conv
from repro.machine.model import MachineModel
from repro.simulate.executor import (
    best_order_traffic,
    simulate_tiled_traffic,
    simulate_untiled_traffic,
)
from repro.simulate.footprint import array_tile_loads, validate_order, working_set_words
from repro.simulate.trace import AddressMap, generate_trace, trace_length
from repro.simulate.trace_sim import run_trace_simulation


class TestFootprintFormulas:
    def test_no_reuse_factorisation(self):
        nest = matmul(10, 9, 8)
        tile = TileShape(nest=nest, blocks=(3, 3, 3))
        # A (supp 0,1): covered = 10*9, outside = ceil(8/3) = 3 grid cells.
        assert array_tile_loads(nest, tile, 1, reuse=False) == 90 * 3

    def test_no_reuse_equals_sum_over_tiles(self):
        # Cross-check the closed form against explicit tile enumeration.
        nest = matmul(5, 4, 7)
        tile = TileShape(nest=nest, blocks=(2, 3, 4))
        from itertools import product

        for j, arr in enumerate(nest.arrays):
            total = 0
            for starts in product(
                *(range(0, L, b) for L, b in zip(nest.bounds, tile.blocks))
            ):
                extents = [
                    min(b, L - s) for s, b, L in zip(starts, tile.blocks, nest.bounds)
                ]
                fp = 1
                for i in arr.support:
                    fp *= extents[i]
                total += fp
            assert array_tile_loads(nest, tile, j, reuse=False) == total, arr.name

    def test_reuse_drops_inner_nonsupport_dims(self):
        nest = matmul(8, 8, 8)
        tile = TileShape(nest=nest, blocks=(4, 4, 4))
        # Order (x1, x2, x3): A (supp x1,x2) has innermost supp dim x2;
        # x3 is inside it -> A loaded once per (x1,x2) tile: 64 words.
        assert array_tile_loads(nest, tile, 1, order=(0, 1, 2), reuse=True) == 64
        # C (supp x1,x3) has innermost supp x3; x2 is outside-of-x3?
        # pos(x2)=1 < pos(x3)=2 -> x2 multiplies: 64 * 2 = 128.
        assert array_tile_loads(nest, tile, 0, order=(0, 1, 2), reuse=True) == 128

    def test_reuse_order_sensitivity(self):
        nest = matmul(8, 8, 8)
        tile = TileShape(nest=nest, blocks=(4, 4, 4))
        # Putting x2 innermost makes A reload along nothing extra but C
        # reload along x2? No: C's supp is (x1,x3); with x2 innermost,
        # C is reused across x2 -> loads drop to 64.
        assert array_tile_loads(nest, tile, 0, order=(0, 2, 1), reuse=True) == 64

    def test_scalar_array(self):
        from repro.library.problems import dot_product

        nest = dot_product(16)
        tile = TileShape(nest=nest, blocks=(4,))
        assert array_tile_loads(nest, tile, 0, reuse=True) == 1

    def test_working_set(self):
        nest = matmul(8, 8, 8)
        tile = TileShape(nest=nest, blocks=(2, 4, 8))
        assert working_set_words(nest, tile) == 16 + 8 + 32

    def test_validate_order(self):
        nest = matmul(4, 4, 4)
        assert validate_order(nest, None) == (0, 1, 2)
        with pytest.raises(ValueError):
            validate_order(nest, (0, 0, 1))


class TestAnalyticExecutor:
    def test_classic_naive_matmul_traffic(self):
        # Untiled ijk matmul: A loaded L1 L2, B loaded L1 L2 L3, C touched
        # L1 L2 L3 times (loads) + stores.
        nest = matmul(16, 16, 16)
        rep = simulate_untiled_traffic(nest, count_output_writes=False)
        assert rep.array("A").loads == 16 * 16
        assert rep.array("B").loads == 16**3
        assert rep.array("C").loads == 16**3

    def test_tiled_beats_naive(self):
        nest = matmul(64, 64, 64)
        M = 2**10
        machine = MachineModel(cache_words=M)
        sol = solve_tiling(nest, M, budget="aggregate")
        tiled = simulate_tiled_traffic(nest, sol.tile, machine=machine)
        naive = simulate_untiled_traffic(nest, machine=machine)
        assert tiled.total_words < naive.total_words / 4

    def test_tiled_within_constant_of_lower_bound(self):
        # E11 core assertion: LP tiling traffic <= c * lower bound with a
        # modest model constant (aggregate budget costs ~n, write
        # counting ~2, reuse slack ~2).
        M = 2**12
        machine = MachineModel(cache_words=M)
        for nest in [
            matmul(128, 128, 128),
            matmul(256, 256, 8),
            matvec(512, 512),
            nbody(512, 512),
            pointwise_conv(8, 16, 32, 16, 16),
        ]:
            sol = solve_tiling(nest, M, budget="aggregate")
            rep = best_order_traffic(nest, sol.tile, machine=machine)
            lb = communication_lower_bound(nest, M)
            assert rep.ratio_to(lb.value) <= 16, (nest.name, rep.summary(), lb.summary())

    def test_infeasible_tile_falls_back_to_no_reuse(self):
        nest = matmul(64, 64, 64)
        tile = TileShape(nest=nest, blocks=(64, 64, 64))
        machine = MachineModel(cache_words=64)  # way too small
        rep = simulate_tiled_traffic(nest, tile, machine=machine, reuse=True)
        assert rep.meta["reuse"] is False
        assert rep.meta["requested_reuse"] is True

    def test_best_order_no_worse_than_default(self):
        nest = matmul(32, 32, 32)
        tile = TileShape(nest=nest, blocks=(8, 8, 8))
        default = simulate_tiled_traffic(nest, tile)
        best = best_order_traffic(nest, tile)
        assert best.total_words <= default.total_words

    def test_output_write_accounting(self):
        nest = matmul(16, 16, 16)
        tile = TileShape(nest=nest, blocks=(4, 4, 4))
        with_writes = simulate_tiled_traffic(nest, tile, count_output_writes=True)
        without = simulate_tiled_traffic(nest, tile, count_output_writes=False)
        assert with_writes.stores > 0
        assert without.stores == 0
        assert with_writes.loads == without.loads


class TestTraceGeneration:
    def test_trace_length(self):
        nest = matmul(3, 4, 5)
        assert trace_length(nest) == 3 * 4 * 5 * 3
        assert len(list(generate_trace(nest))) == trace_length(nest)

    def test_every_point_touched_once_per_array(self):
        nest = matmul(3, 3, 3)
        tile = TileShape(nest=nest, blocks=(2, 2, 2))
        from collections import Counter

        counts = Counter()
        for acc in generate_trace(nest, tile=tile):
            counts[acc.array] += 1
        assert counts == {0: 27, 1: 27, 2: 27}

    def test_outputs_are_writes(self):
        nest = matmul(2, 2, 2)
        for acc in generate_trace(nest):
            assert acc.is_write == (acc.array == 0)

    def test_address_map_bijective(self):
        nest = matmul(3, 4, 5)
        amap = AddressMap(nest)
        seen = set()
        for acc in generate_trace(nest):
            addr = amap.address(acc)
            assert 0 <= addr < amap.total_words
            seen.add((acc.array, acc.element))
            assert amap.array_of(addr) == acc.array
        # All distinct elements mapped.
        assert amap.total_words == 3 * 5 + 3 * 4 + 4 * 5

    def test_address_validation(self):
        nest = matmul(3, 4, 5)
        amap = AddressMap(nest)
        from repro.simulate.trace import Access

        with pytest.raises(ValueError):
            amap.address(Access(array=0, element=(0,), is_write=False))
        with pytest.raises(ValueError):
            amap.address(Access(array=0, element=(0, 99), is_write=False))

    def test_trace_guard(self):
        with pytest.raises(ValueError):
            next(generate_trace(matmul(300, 300, 300)))


class TestTraceSimulation:
    def test_lru_between_belady_and_naive(self):
        nest = matmul(12, 12, 12)
        M = 96
        machine = MachineModel(cache_words=M)
        sol = solve_tiling(nest, M, budget="aggregate")
        lru = run_trace_simulation(nest, machine, tile=sol.tile)
        bel = run_trace_simulation(nest, machine, tile=sol.tile, policy="belady")
        assert bel.total_words <= lru.total_words

    def test_tiling_beats_untiled_under_lru(self):
        nest = matmul(16, 16, 16)
        M = 128
        machine = MachineModel(cache_words=M)
        sol = solve_tiling(nest, M, budget="aggregate")
        tiled = run_trace_simulation(nest, machine, tile=sol.tile)
        naive = run_trace_simulation(nest, machine, tile=None)
        assert tiled.total_words < naive.total_words

    def test_lru_within_constant_of_analytic(self):
        nest = matmul(16, 16, 16)
        M = 128
        machine = MachineModel(cache_words=M)
        sol = solve_tiling(nest, M, budget="aggregate")
        ana = simulate_tiled_traffic(nest, sol.tile, machine=machine)
        lru = run_trace_simulation(nest, machine, tile=sol.tile)
        assert lru.total_words <= 3 * ana.total_words
        assert lru.total_words >= ana.total_words / 3

    def test_traffic_at_least_lower_bound(self):
        # The model lower bound must hold for every simulated policy.
        nest = matmul(12, 12, 12)
        M = 64
        machine = MachineModel(cache_words=M)
        lb = communication_lower_bound(nest, M)
        for policy in ("lru", "belady"):
            rep = run_trace_simulation(nest, machine, policy=policy)
            assert rep.total_words >= lb.value * 0.999, policy

    def test_direct_mapped_never_beats_lru_much(self):
        nest = matmul(8, 8, 8)
        machine = MachineModel(cache_words=64)
        sol = solve_tiling(nest, 64, budget="aggregate")
        lru = run_trace_simulation(nest, machine, tile=sol.tile, policy="lru")
        dm = run_trace_simulation(nest, machine, tile=sol.tile, policy="direct")
        assert dm.total_words >= lru.total_words * 0.9

    def test_line_size_effect(self):
        # Larger lines with unit-stride access reduce miss count.
        nest = matvec(64, 64)
        m1 = MachineModel(cache_words=256, line_words=1)
        m8 = MachineModel(cache_words=256, line_words=8)
        r1 = run_trace_simulation(nest, m1)
        r8 = run_trace_simulation(nest, m8)
        assert r8.meta["misses"] < r1.meta["misses"]

    def test_bad_policy(self):
        with pytest.raises(ValueError):
            run_trace_simulation(matmul(2, 2, 2), MachineModel(cache_words=8), policy="rand")
