"""Hierarchy-native serving: request schema, invariants, golden surfaces.

The tentpole contract, pinned here:

* **Nesting invariant** — after nested integer repair, level-l blocks
  never exceed level-(l+1) blocks, tuned or not.
* **Certificate invariant** — every boundary's measured traffic is >=
  that boundary's Theorem bound (ratio >= 1, always).
* **Seed invariant** — the tuned nested tiling's *total* boundary
  traffic never exceeds the analytic seed's.
* **Determinism** — one request produces one payload, byte-identical
  across ``Session.hierarchy``, ``/v1/hierarchy`` and ``repro-tile
  hierarchy`` (golden file shared by all three).
* **Degeneration** — a single-level hierarchy is exactly
  ``Session.analyze`` (untuned) / ``Session.tune`` (tuned).
"""

import doctest
import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import HierarchyRequest, RequestError, Session, TuneRequest
from repro.cli import main
from repro.core.loopnest import ArrayRef, LoopNest
from repro.library.problems import (
    matmul,
    mttkrp,
    nbody,
    pointwise_conv,
    tensor_contraction,
)
from repro.plan import Planner
from repro.serve import make_server
from repro.tune import HierarchyReport, tune_hierarchy

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "hierarchy_payloads.json").read_text()
)

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHierarchyRequest:
    def test_round_trip(self):
        request = HierarchyRequest.from_json(
            {"problem": "matmul", "sizes": [24, 24, 24],
             "capacities": [48, 192], "tune_budget": 8}
        )
        assert HierarchyRequest.from_json(request.to_json()) == request

    def test_validation(self):
        nest = nbody(8, 8)
        with pytest.raises(RequestError, match="at least one"):
            HierarchyRequest(nest=nest, capacities=()).validate()
        with pytest.raises(RequestError, match=">= 2"):
            HierarchyRequest(nest=nest, capacities=(1, 8)).validate()
        with pytest.raises(RequestError, match="strictly increasing"):
            HierarchyRequest(nest=nest, capacities=(64, 8)).validate()
        with pytest.raises(RequestError, match="strategy"):
            HierarchyRequest(nest=nest, capacities=(8, 64), strategy="magic").validate()
        with pytest.raises(RequestError, match="tune_budget"):
            HierarchyRequest(nest=nest, capacities=(8, 64), tune_budget=-1).validate()
        with pytest.raises(RequestError, match="radius"):
            HierarchyRequest(nest=nest, capacities=(8, 64), radius=99).validate()
        with pytest.raises(RequestError, match="aggregate"):
            HierarchyRequest(nest=nest, capacities=(2, 64)).validate()

    def test_trace_guard(self):
        with pytest.raises(RequestError, match="guard"):
            HierarchyRequest(
                nest=matmul(4096, 4096, 4096), capacities=(1024, 65536)
            ).validate()


@pytest.fixture()
def service():
    server = make_server(port=0, session=Session(workers=0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _post(base, path, blob):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(blob).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, json.load(resp)


class TestHierarchySurfaces:
    """One request, three surfaces, one golden payload."""

    REQUEST = {
        "problem": "matmul",
        "sizes": [24, 24, 24],
        "capacities": [48, 192, 768],
        "tune_budget": 12,
    }
    CLI = [
        "hierarchy", "--problem", "matmul", "--sizes", "24,24,24",
        "--capacities", "48:192:768", "--tune", "12", "--workers", "0",
    ]

    def test_session_matches_golden(self):
        result = Session(workers=0).hierarchy(HierarchyRequest.from_json(self.REQUEST))
        assert result.kind == "hierarchy"
        assert result.payload == GOLDEN["hierarchy_matmul_tuned"]

    def test_untuned_and_per_array_golden(self):
        session = Session(workers=0)
        untuned = session.hierarchy(
            HierarchyRequest.from_json({k: v for k, v in self.REQUEST.items()
                                        if k != "tune_budget"})
        )
        assert untuned.payload == GOLDEN["hierarchy_matmul"]
        assert untuned.payload["evaluations_used"] == 1
        assert untuned.payload["tuned"] == untuned.payload["seed"]
        per_array = session.hierarchy(
            HierarchyRequest.from_json(
                {"problem": "nbody", "sizes": [40, 40],
                 "capacities": [32, 256], "budget": "per-array"}
            )
        )
        assert per_array.payload == GOLDEN["hierarchy_nbody_per_array"]

    def test_http_matches_golden(self, service):
        status, body = _post(service, "/v1/hierarchy", self.REQUEST)
        assert status == 200
        assert body["schema_version"] == 1 and body["kind"] == "hierarchy"
        assert body["payload"] == GOLDEN["hierarchy_matmul_tuned"]

    def test_cli_matches_golden(self, capsys):
        assert main(self.CLI) == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["kind"] == "hierarchy"
        assert body["payload"] == GOLDEN["hierarchy_matmul_tuned"]

    def test_payload_identical_cold_and_warm(self):
        request = HierarchyRequest.from_json(self.REQUEST)
        session = Session(workers=0)
        cold = session.hierarchy(request)
        warm = session.hierarchy(request)
        assert cold.payload == warm.payload
        assert cold.meta["cache_hit"] is False and warm.meta["cache_hit"] is True
        for boundary in cold.payload["boundaries"]:
            assert "cache_hit" not in boundary["plan"]

    def test_http_validation_error_is_structured_400(self, service):
        request = urllib.request.Request(
            service + "/v1/hierarchy",
            data=json.dumps({"problem": "nbody", "capacities": [64, 8]}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        body = json.load(err.value)
        assert body["kind"] == "error" and body["payload"]["status"] == 400

    def test_cli_smoke_clamps_tune_budget(self, capsys):
        rc = main([
            "hierarchy", "--problem", "nbody", "--sizes", "30,30",
            "--capacities", "16:64", "--tune", "64", "--workers", "0", "--smoke",
        ])
        assert rc == 0
        body = json.loads(capsys.readouterr().out.strip())
        assert body["payload"]["evaluations_used"] <= 8

    def test_cli_bad_inputs_clean_errors(self, capsys):
        rc = main(["hierarchy", "--problem", "nbody", "--capacities", "64:8"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["hierarchy", "--problem", "nbody"])  # missing --capacities


class TestHierarchyInvariants:
    CATALOG = [
        (matmul(16, 16, 16), (32, 128, 512)),
        (matmul(30, 30, 4), (48, 96)),
        (nbody(40, 40), (16, 64, 256)),
        (pointwise_conv(4, 8, 8, 6, 6), (64, 300, 301)),
        (tensor_contraction((6, 6), (6,), (6, 6)), (100, 400)),
        (mttkrp(10, 10, 10, 3), (64, 128)),
    ]

    def test_catalog_certified_nested_and_never_worse(self):
        planner = Planner()
        for nest, capacities in self.CATALOG:
            report = tune_hierarchy(
                nest, capacities, planner=planner, max_evaluations=12, workers=0
            )
            label = (nest.name, capacities)
            assert report.tuned_total_traffic_words <= report.seed_total_traffic_words, label
            for boundary in report.boundaries:
                assert boundary.certificate_ratio >= 1.0, label
                assert boundary.plan.tile.is_feasible(
                    boundary.cache_words, report.budget
                ), label
            for inner, outer in zip(report.tiles, report.tiles[1:]):
                assert all(a <= b for a, b in zip(inner, outer)), label

    def test_report_round_trip(self):
        report = tune_hierarchy(
            nbody(20, 20), (8, 32), planner=Planner(), max_evaluations=6, workers=0
        )
        again = HierarchyReport.from_json(json.loads(json.dumps(report.to_json())))
        assert again.to_json() == report.to_json()

    def test_equal_capacity_adjacent_served(self):
        # The nested-LP edge case, exercised through the full façade.
        result = Session(workers=0).hierarchy(
            HierarchyRequest(nest=matmul(16, 16, 16), capacities=(300, 301))
        )
        inner, outer = result.payload["boundaries"]
        assert all(a <= b for a, b in zip(inner["tile"], outer["tile"]))

    def test_huge_top_level_served_as_whole_nest(self):
        nest = matmul(16, 16, 16)
        result = Session(workers=0).hierarchy(
            HierarchyRequest(nest=nest, capacities=(64, 2**20), budget="per-array")
        )
        assert result.payload["boundaries"][1]["tile"] == list(nest.bounds)


@st.composite
def small_nests(draw):
    d = draw(st.integers(1, 3))
    n = draw(st.integers(1, 3))
    supports = []
    for _ in range(n):
        support = draw(
            st.sets(st.integers(0, d - 1), min_size=0, max_size=d).map(
                lambda s: tuple(sorted(s))
            )
        )
        supports.append(set(support))
    covered = {i for s in supports for i in s}
    for loop in range(d):
        if loop not in covered:
            supports[draw(st.integers(0, n - 1))].add(loop)
    bounds = tuple(draw(st.integers(1, 16)) for _ in range(d))
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=tuple(sorted(s)), is_output=(j == 0))
        for j, s in enumerate(supports)
    )
    return LoopNest(
        name="random", loops=tuple(f"x{i}" for i in range(d)), bounds=bounds,
        arrays=arrays,
    )


class TestHierarchyProperties:
    """The three invariants, universally quantified over random nests."""

    @SETTINGS
    @given(
        nest=small_nests(),
        stack=st.lists(st.integers(4, 256), min_size=1, max_size=3, unique=True),
        tune_budget=st.sampled_from([1, 6]),
    )
    def test_nested_certified_never_worse(self, nest, stack, tune_budget):
        capacities = tuple(sorted(stack))
        if capacities[0] < nest.num_arrays:  # aggregate feasibility floor
            capacities = (nest.num_arrays,) + tuple(
                c for c in capacities if c > nest.num_arrays
            )
        report = tune_hierarchy(
            nest, capacities, planner=Planner(),
            max_evaluations=tune_budget, workers=0,
        )
        assert report.tuned_total_traffic_words <= report.seed_total_traffic_words
        for boundary in report.boundaries:
            assert boundary.certificate_ratio >= 1.0
        for inner, outer in zip(report.tiles, report.tiles[1:]):
            assert all(a <= b for a, b in zip(inner, outer))
        for blocks, L in zip(zip(*report.tiles), nest.bounds):
            assert all(1 <= b <= L for b in blocks)


class TestSingleLevelDegeneration:
    """A one-level hierarchy is exactly analyze (untuned) / tune (tuned)."""

    def test_untuned_equals_analyze(self):
        session = Session(workers=0)
        nest = matmul(16, 16, 16)
        hierarchy = session.hierarchy(
            HierarchyRequest(nest=nest, capacities=(256,), budget="per-array")
        )
        analyze = session.analyze(nest, cache_words=256)
        expected = dict(analyze.payload)
        expected.pop("certificate")
        for key in ("name", "loops", "bounds", "arrays"):
            # The hierarchy payload carries the nest once, on the report
            # envelope, not per level.
            expected.pop(key)
        boundary = hierarchy.payload["boundaries"][0]
        assert boundary["plan"] == expected
        assert hierarchy.payload["nest"] == nest.to_json()
        assert hierarchy.payload["seed"]["tile"] == expected["tile"]
        assert hierarchy.payload["tuned"]["tile"] == expected["tile"]

    def test_tuned_equals_tune(self):
        session = Session(workers=0)
        nest = nbody(50, 50)
        hierarchy = session.hierarchy(
            HierarchyRequest(nest=nest, capacities=(32,), tune_budget=12)
        )
        tune = session.tune(
            TuneRequest(nest=nest, cache_words=32, max_evaluations=12,
                        capacities=(32,))
        )
        assert hierarchy.payload["tuned"]["tile"] == tune.payload["tuned"]["tile"]
        assert hierarchy.payload["seed"]["tile"] == tune.payload["seed"]["tile"]
        assert (
            hierarchy.payload["tuned"]["total_traffic_words"]
            == tune.payload["tuned"]["traffic_words"]
        )
        assert (
            hierarchy.payload["boundaries"][0]["lower_bound_words"]
            == tune.payload["lower_bound_words"]
        )


class TestDocsExamples:
    """The executable examples in docs/hierarchy.md stay honest."""

    def test_docs_hierarchy_doctests(self):
        path = Path(__file__).parent.parent / "docs" / "hierarchy.md"
        outcome = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        )
        assert outcome.attempted > 0
        assert outcome.failed == 0
