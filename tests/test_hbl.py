"""Golden tests for the HBL LP (paper §3 / eq. 3.1-3.2)."""

from fractions import Fraction as F

import pytest

from repro.core.hbl import build_hbl_lp, solve_hbl
from repro.library.problems import (
    batched_matmul,
    dot_product,
    matmul,
    matvec,
    mttkrp,
    nbody,
    outer_product,
    pointwise_conv,
    tensor_contraction,
    ttm,
)


class TestGoldenOptima:
    """k_HBL values derivable by hand for each catalog problem."""

    def test_matmul_three_halves(self):
        sol = solve_hbl(matmul(64, 64, 64))
        assert sol.k == F(3, 2)
        assert sol.s == (F(1, 2), F(1, 2), F(1, 2))

    def test_matvec_one(self):
        # y[x1] += A[x1,x2] x[x2]: s_A = 1 covers both loops.
        sol = solve_hbl(matvec(64, 64))
        assert sol.k == 1

    def test_outer_product_one(self):
        sol = solve_hbl(outer_product(64, 64))
        assert sol.k == 1

    def test_dot_product_one(self):
        # Scalar output contributes nothing; one vector covers the loop.
        sol = solve_hbl(dot_product(64))
        assert sol.k == 1

    def test_nbody_one(self):
        # §6.3: F,P cover x1; Q covers x2; optimum s_P (or s_F) + s_Q = ...
        # Constraint x1: s_F + s_P >= 1; x2: s_Q >= 1 -> k = 2? No: Q only
        # covers x2, so s_Q = 1 and s_F + s_P >= 1 gives k = 2.
        sol = solve_hbl(nbody(64, 64))
        assert sol.k == 2

    def test_contraction_three_halves(self):
        nest = tensor_contraction((8, 8), (8,), (8, 8))
        assert solve_hbl(nest).k == F(3, 2)

    def test_pointwise_conv_three_halves(self):
        # §6.2: contraction structure -> 3/2 in the large-bound regime.
        assert solve_hbl(pointwise_conv(8, 8, 8, 8, 8)).k == F(3, 2)

    def test_mttkrp_five_thirds(self):
        # min t+a+b+c st a+t>=1, b+t>=1, c+t>=1, a+b+c>=1 -> t=2/3, rest 1/3.
        assert solve_hbl(mttkrp(8, 8, 8, 8)).k == F(5, 3)

    def test_ttm(self):
        # Y{i,j,r} X{i,j,k} U{k,r}: i: y+x>=1; j: y+x>=1; k: x+u>=1; r: y+u>=1.
        # Optimum 3/2 at y=x=u=1/2.
        assert solve_hbl(ttm(8, 8, 8, 8)).k == F(3, 2)

    def test_batched_matmul(self):
        # Adding the shared batch loop keeps the matmul optimum 3/2.
        assert solve_hbl(batched_matmul(4, 8, 8, 8)).k == F(3, 2)


class TestRowDeletion:
    def test_delete_one_row_matmul(self):
        # Removing the x3 row: remaining rows x1: s_C + s_A >= 1 and
        # x2: s_A + s_B >= 1; optimum s_A = 1 (paper §6.1: s_hat = (0,1,0)).
        sol = solve_hbl(matmul(64, 64, 64), exclude=[2])
        assert sol.k == 1
        assert sol.s == (0, 1, 0)
        assert sol.excluded == (2,)

    def test_delete_all_rows(self):
        sol = solve_hbl(matmul(64, 64, 64), exclude=[0, 1, 2])
        assert sol.k == 0
        assert sol.s == (0, 0, 0)

    def test_row_sum(self):
        sol = solve_hbl(matmul(64, 64, 64), exclude=[2])
        # R_3 = {C, B}; at s=(0,1,0) the row-sum is 0 (the beta term fires).
        assert sol.row_sum(2) == 0
        assert sol.row_sum(0) == 1

    def test_bad_exclusion_position(self):
        with pytest.raises(ValueError):
            build_hbl_lp(matmul(4, 4, 4), exclude=[7])


class TestDerivedQuantities:
    def test_tile_size_bound_matmul(self):
        sol = solve_hbl(matmul(64, 64, 64))
        assert sol.tile_size_bound(2**16) == float(2**24)  # M^(3/2)

    def test_communication_lower_bound_matmul(self):
        # L^3 / sqrt(M) with L = 2^6, M = 2^16 -> 2^18 / 2^8 * ... compute:
        # ops = 2^18, M^(1-3/2) = 2^-8 -> 2^10 words.
        sol = solve_hbl(matmul(64, 64, 64))
        assert sol.communication_lower_bound(2**16) == float(2**10)

    def test_lp_structure(self):
        lp = build_hbl_lp(matmul(4, 4, 4))
        assert len(lp.variables) == 3
        assert len(lp.constraints) == 3
        assert all(c.relation == ">=" for c in lp.constraints)


class TestInvariance:
    def test_permutation_invariance(self):
        base = mttkrp(4, 8, 16, 32)
        k = solve_hbl(base).k
        for order in ([1, 0, 2, 3], [3, 2, 1, 0], [2, 3, 0, 1]):
            assert solve_hbl(base.permuted(order)).k == k

    def test_bounds_do_not_matter(self):
        # The §3 LP depends only on supports.
        assert solve_hbl(matmul(2, 2, 2)).k == solve_hbl(matmul(999, 5, 123)).k
