"""Tests for the loop-nest IR (repro.core.loopnest)."""

from fractions import Fraction as F

import pytest

from repro.core.loopnest import ArrayRef, LoopNest, LoopNestError
from repro.library.problems import matmul, pointwise_conv


class TestArrayRef:
    def test_valid(self):
        a = ArrayRef("A", (0, 2))
        assert a.contains(0) and not a.contains(1)
        assert a.project((7, 8, 9)) == (7, 9)

    def test_empty_support_ok(self):
        a = ArrayRef("scalar", ())
        assert a.project((1, 2)) == ()

    def test_unsorted_support_rejected(self):
        with pytest.raises(LoopNestError):
            ArrayRef("A", (2, 0))

    def test_duplicate_support_rejected(self):
        with pytest.raises(LoopNestError):
            ArrayRef("A", (1, 1))

    def test_negative_support_rejected(self):
        with pytest.raises(LoopNestError):
            ArrayRef("A", (-1, 0))

    def test_empty_name_rejected(self):
        with pytest.raises(LoopNestError):
            ArrayRef("", (0,))


class TestLoopNestValidation:
    def test_matmul_valid(self):
        mm = matmul(4, 5, 6)
        assert mm.depth == 3
        assert mm.num_arrays == 3
        assert mm.num_operations == 120

    def test_bounds_length_mismatch(self):
        with pytest.raises(LoopNestError):
            LoopNest("bad", ("i", "j"), (4,), (ArrayRef("A", (0,)),))

    def test_duplicate_loops(self):
        with pytest.raises(LoopNestError):
            LoopNest("bad", ("i", "i"), (4, 4), (ArrayRef("A", (0, 1)),))

    def test_zero_bound(self):
        with pytest.raises(LoopNestError):
            LoopNest("bad", ("i",), (0,), (ArrayRef("A", (0,)),))

    def test_no_arrays(self):
        with pytest.raises(LoopNestError):
            LoopNest("bad", ("i",), (4,), ())

    def test_duplicate_array_names(self):
        with pytest.raises(LoopNestError):
            LoopNest(
                "bad", ("i",), (4,), (ArrayRef("A", (0,)), ArrayRef("A", (0,)))
            )

    def test_support_out_of_range(self):
        with pytest.raises(LoopNestError):
            LoopNest("bad", ("i",), (4,), (ArrayRef("A", (0, 1)),))

    def test_uncovered_loop_rejected(self):
        # Loop j appears in no support -> paper's w.l.o.g. assumption violated.
        with pytest.raises(LoopNestError, match="appear in no array"):
            LoopNest("bad", ("i", "j"), (4, 4), (ArrayRef("A", (0,)),))


class TestDerivedStructure:
    def test_support_matrix(self):
        mm = matmul(4, 4, 4)
        assert mm.support_matrix() == [[1, 0, 1], [1, 1, 0], [0, 1, 1]]

    def test_arrays_containing(self):
        mm = matmul(4, 4, 4)
        # Loop x2 (pos 1) appears in A (idx 1) and B (idx 2).
        assert mm.arrays_containing(1) == (1, 2)

    def test_array_sizes(self):
        mm = matmul(4, 5, 6)
        assert mm.array_size(0) == 24  # C: 4*6
        assert mm.array_size(1) == 20  # A: 4*5
        assert mm.array_size(2) == 30  # B: 5*6
        assert mm.total_footprint() == 74

    def test_betas_exact_for_powers(self):
        mm = matmul(2**8, 2**8, 2**4)
        assert mm.betas(2**16) == [F(1, 2), F(1, 2), F(1, 4)]

    def test_loop_position_and_array_lookup(self):
        mm = matmul(4, 4, 4)
        assert mm.loop_position("x2") == 1
        assert mm.array("B").support == (1, 2)
        with pytest.raises(LoopNestError):
            mm.loop_position("zz")
        with pytest.raises(LoopNestError):
            mm.array("zz")


class TestTransforms:
    def test_with_bounds_sequence(self):
        mm = matmul(4, 4, 4).with_bounds([8, 9, 10])
        assert mm.bounds == (8, 9, 10)

    def test_with_bounds_mapping(self):
        mm = matmul(4, 4, 4).with_bounds({"x3": 1})
        assert mm.bounds == (4, 4, 1)

    def test_permuted_roundtrip(self):
        mm = matmul(4, 5, 6)
        p = mm.permuted([2, 0, 1])
        assert p.loops == ("x3", "x1", "x2")
        assert p.bounds == (6, 4, 5)
        # A had support (x1, x2) = positions (0,1); now positions (1,2).
        assert p.array("A").support == (1, 2)

    def test_permuted_invalid(self):
        with pytest.raises(LoopNestError):
            matmul(4, 4, 4).permuted([0, 0, 1])

    def test_restricted_slices(self):
        mm = matmul(4, 5, 6).restricted({2: 0})
        assert mm.bounds == (4, 5, 1)
        with pytest.raises(LoopNestError):
            matmul(4, 4, 4).restricted({9: 0})


class TestIteration:
    def test_iteration_points_count(self):
        mm = matmul(2, 3, 2)
        pts = list(mm.iteration_points())
        assert len(pts) == 12
        assert pts[0] == (0, 0, 0)
        assert pts[-1] == (1, 2, 1)
        assert len(set(pts)) == 12

    def test_iteration_guard(self):
        big = matmul(1024, 1024, 1024)
        with pytest.raises(LoopNestError):
            next(big.iteration_points())

    def test_touched_elements(self):
        mm = matmul(2, 2, 2)
        pts = [(0, 0, 0), (0, 1, 0), (1, 0, 0)]
        # C = phi(x1, x3): projections are (0,0), (0,0), (1,0).
        assert mm.touched_elements(0, pts) == {(0, 0), (1, 0)}

    def test_describe_mentions_everything(self):
        text = pointwise_conv(2, 3, 4, 5, 6).describe()
        for token in ("pointwise_conv", "b<=2", "c<=3", "Out", "Image", "Filter"):
            assert token in text
