"""Tests for the textual front-end (repro.core.parser)."""

import pytest

from repro.core.parser import ParseError, parse_nest
from repro.library.problems import matmul, pointwise_conv


class TestHappyPath:
    def test_matmul(self):
        nest = parse_nest(
            "C[i,k] += A[i,j] * B[j,k]", bounds={"i": 4, "j": 5, "k": 6}, name="mm"
        )
        assert nest.loops == ("i", "k", "j")  # first-appearance order
        assert nest.bounds == (4, 6, 5)
        assert nest.array("C").is_output
        assert not nest.array("A").is_output

    def test_explicit_loop_order_matches_catalog(self):
        nest = parse_nest(
            "C[x1,x3] += A[x1,x2] * B[x2,x3]",
            bounds={"x1": 4, "x2": 5, "x3": 6},
            name="matmul",
            loop_order=["x1", "x2", "x3"],
        )
        reference = matmul(4, 5, 6)
        assert nest.loops == reference.loops
        assert nest.bounds == reference.bounds
        assert [a.support for a in nest.arrays] == [a.support for a in reference.arrays]

    def test_pointwise_conv_paper_listing(self):
        # Paper eq. (6.5): Out(k,h,w,b) += Image(w,h,c,b) * Filter(k,c)
        nest = parse_nest(
            "Out[k,h,w,b] += Image[w,h,c,b] * Filter[k,c]",
            bounds={"b": 2, "c": 3, "k": 4, "w": 5, "h": 6},
            name="pointwise_conv",
            loop_order=["b", "c", "k", "w", "h"],
        )
        reference = pointwise_conv(2, 3, 4, 5, 6)
        assert [a.support for a in nest.arrays] == [a.support for a in reference.arrays]

    def test_plain_assignment(self):
        nest = parse_nest("y[i] = A[i,j] * x[j]", bounds={"i": 3, "j": 4})
        assert nest.array("y").is_output
        assert nest.depth == 2

    def test_scalar_output(self):
        nest = parse_nest("s[] += u[i] * v[i]", bounds={"i": 9})
        assert nest.array("s").support == ()

    def test_repeated_identical_access_collapses(self):
        nest = parse_nest("y[i] += A[i,j] * A[i,j]", bounds={"i": 3, "j": 4})
        assert nest.num_arrays == 2

    def test_additive_rhs(self):
        nest = parse_nest("z[i] = u[i] + v[i]", bounds={"i": 5})
        assert nest.num_arrays == 3


class TestErrors:
    def test_no_equals(self):
        with pytest.raises(ParseError):
            parse_nest("C[i,j]", bounds={"i": 2, "j": 2})

    def test_empty_rhs(self):
        with pytest.raises(ParseError):
            parse_nest("C[i,j] += ", bounds={"i": 2, "j": 2})

    def test_affine_index_rejected(self):
        with pytest.raises(ParseError, match="projective"):
            parse_nest("C[i] += A[i+1]", bounds={"i": 4})

    def test_strided_index_rejected(self):
        with pytest.raises(ParseError, match="projective"):
            parse_nest("C[i] += A[2i]", bounds={"i": 4})

    def test_repeated_index_in_access(self):
        with pytest.raises(ParseError, match="repeats"):
            parse_nest("C[i] += A[i,i]", bounds={"i": 4})

    def test_conflicting_supports_same_array(self):
        with pytest.raises(ParseError, match="distinct names"):
            parse_nest("C[i] += A[i,j] * A[j,i]", bounds={"i": 4, "j": 4})

    def test_missing_bounds(self):
        with pytest.raises(ParseError, match="bounds"):
            parse_nest("C[i,k] += A[i,j] * B[j,k]", bounds={"i": 4, "j": 5})

    def test_multi_access_lhs(self):
        with pytest.raises(ParseError):
            parse_nest("C[i] D[i] += A[i]", bounds={"i": 4})

    def test_garbage_between_accesses(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse_nest("C[i] += A[i] foo B[i]", bounds={"i": 4})

    def test_bad_loop_order(self):
        with pytest.raises(ParseError, match="loop_order"):
            parse_nest(
                "C[i] += A[i,j]", bounds={"i": 2, "j": 2}, loop_order=["i", "k"]
            )

    def test_bad_trailing_tokens(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_nest("C[i] += A[i] extra", bounds={"i": 4})
