"""Tests for the sharded cross-process plan store.

Covers the storage layer directly (merge semantics, versioned
invalidation, corruption handling, counters) and its planner wiring
(publish on solve, adopt on probe, stale-version re-solve).
"""

import json
import shutil

import pytest

from repro.library.problems import matmul, mttkrp
from repro.plan import Planner
from repro.util.sharedstore import STORE_SCHEMA_VERSION, SharedPlanStore

PIECES_A = [{"marker": "a"}]
PIECES_B = [{"marker": "b"}]


class TestStoreBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = SharedPlanStore(tmp_path)
        assert store.get("k1") is None
        assert store.put("k1", PIECES_A)
        assert store.get("k1") == PIECES_A
        assert store.keys() == ["k1"]
        assert len(store) == 1

    def test_merge_within_a_shard(self, tmp_path):
        # One shard forces every key into the same file: a put must
        # read-merge-write, never clobber the other keys.
        store = SharedPlanStore(tmp_path, shards=1)
        store.put("k1", PIECES_A)
        store.put("k2", PIECES_B)
        assert store.get("k1") == PIECES_A
        assert store.get("k2") == PIECES_B
        assert sorted(store.keys()) == ["k1", "k2"]

    def test_two_stores_share_one_root(self, tmp_path):
        # Two store objects over the same directory stand in for two
        # processes: a put through one is visible through the other.
        writer = SharedPlanStore(tmp_path)
        reader = SharedPlanStore(tmp_path)
        writer.put("k1", PIECES_A)
        assert reader.get("k1") == PIECES_A
        writer.put("k1", PIECES_B)  # overwrite propagates too
        assert reader.get("k1") == PIECES_B

    def test_shard_spread_is_stable(self, tmp_path):
        store = SharedPlanStore(tmp_path, shards=4)
        keys = [f"key-{i}" for i in range(32)]
        for key in keys:
            store.put(key, PIECES_A)
        assert sorted(store.keys()) == sorted(keys)
        # Placement is a pure function of the key, not of store state.
        other = SharedPlanStore(tmp_path, shards=4)
        assert all(
            store._shard_index(key) == other._shard_index(key) for key in keys
        )
        assert len(list(tmp_path.glob("shard-*.json"))) > 1

    def test_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            SharedPlanStore(tmp_path, shards=0)

    def test_stats_shape_and_counts(self, tmp_path):
        store = SharedPlanStore(tmp_path)
        store.get("missing")
        store.put("k1", PIECES_A)
        store.get("k1")
        stats = store.stats_dict()
        assert stats == {
            "version": STORE_SCHEMA_VERSION,
            "shards": 8,
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "put_failures": 0,
            "invalidated": 0,
        }


class TestInvalidation:
    def test_version_bump_discards_stale_entries(self, tmp_path):
        old = SharedPlanStore(tmp_path, version=1)
        old.put("k1", PIECES_A)
        new = SharedPlanStore(tmp_path, version=2)
        assert new.get("k1") is None
        assert new.stats_dict()["invalidated"] >= 1
        # The next put rebuilds the shard under the new version...
        assert new.put("k1", PIECES_B)
        assert new.get("k1") == PIECES_B
        # ...which in turn invalidates it for the old-version reader.
        fresh_old = SharedPlanStore(tmp_path, version=1)
        assert fresh_old.get("k1") is None
        assert fresh_old.stats_dict()["invalidated"] >= 1

    def test_corrupt_shard_reads_as_empty(self, tmp_path):
        store = SharedPlanStore(tmp_path, shards=1)
        store.put("k1", PIECES_A)
        store._shard_path(0).write_text("{torn write garbage")
        reader = SharedPlanStore(tmp_path, shards=1)
        assert reader.get("k1") is None
        assert reader.stats_dict()["invalidated"] == 1
        # Writers rebuild corrupt shards instead of crashing on them.
        assert reader.put("k2", PIECES_B)
        assert reader.get("k2") == PIECES_B

    def test_checksum_mismatch_reads_as_empty(self, tmp_path):
        store = SharedPlanStore(tmp_path, shards=1)
        store.put("k1", PIECES_A)
        path = store._shard_path(0)
        blob = json.loads(path.read_text())
        blob["entries"]["k1"]["pieces"] = PIECES_B  # tampered, checksum stale
        path.write_text(json.dumps(blob))
        reader = SharedPlanStore(tmp_path, shards=1)
        assert reader.get("k1") is None
        assert reader.stats_dict()["invalidated"] == 1

    def test_wrong_shape_reads_as_empty(self, tmp_path):
        store = SharedPlanStore(tmp_path, shards=1)
        store._shard_path(0).write_text(json.dumps({"version": 1, "entries": []}))
        assert store.get("k1") is None

    def test_put_failure_is_counted_not_raised(self, tmp_path):
        root = tmp_path / "store"
        store = SharedPlanStore(root)
        shutil.rmtree(root)
        assert store.put("k1", PIECES_A) is False
        assert store.stats_dict()["put_failures"] == 1


class TestPlannerWiring:
    def test_solve_publishes_and_sibling_adopts(self, tmp_path):
        solver = Planner(shared_store=SharedPlanStore(tmp_path))
        solver.plan(matmul(16, 16, 16), 256)
        assert solver.stats.structure_solves == 1

        sibling = Planner(shared_store=SharedPlanStore(tmp_path))
        plan = sibling.plan(matmul(64, 64, 64), 1024)  # same structure
        assert plan.exponent == solver.plan(matmul(64, 64, 64), 1024).exponent
        assert sibling.stats.structure_solves == 0
        assert sibling.stats.shared_hits == 1

    def test_probe_structure_adopts_without_planning(self, tmp_path):
        solver = Planner(shared_store=SharedPlanStore(tmp_path))
        key = solver.canonicalization(mttkrp(8, 8, 8, 8)).form.key()
        solver.plan(mttkrp(8, 8, 8, 8), 256)

        sibling = Planner(shared_store=SharedPlanStore(tmp_path))
        assert not sibling.has_structure(key)
        assert sibling.probe_structure(key)
        assert sibling.has_structure(key)
        assert sibling.stats.shared_hits == 1

    def test_stale_version_forces_resolve(self, tmp_path):
        old = Planner(shared_store=SharedPlanStore(tmp_path, version=1))
        old.plan(matmul(16, 16, 16), 256)

        bumped_store = SharedPlanStore(tmp_path, version=2)
        fresh = Planner(shared_store=bumped_store)
        fresh.plan(matmul(16, 16, 16), 256)
        assert fresh.stats.shared_hits == 0
        assert fresh.stats.structure_solves == 1  # stale entry discarded
        assert bumped_store.stats_dict()["invalidated"] >= 1

    def test_path_coerces_to_store(self, tmp_path):
        planner = Planner(shared_store=tmp_path / "cache")
        assert isinstance(planner.shared_store, SharedPlanStore)
        planner.plan(matmul(16, 16, 16), 256)
        assert len(planner.shared_store) == 1

    def test_malformed_shared_entry_is_discarded(self, tmp_path, caplog):
        store = SharedPlanStore(tmp_path)
        planner = Planner(shared_store=store)
        key = planner.canonicalization(matmul(16, 16, 16)).form.key()
        store.put(key, [{"not": "a piece"}])
        with caplog.at_level("WARNING", logger="repro.plan.planner"):
            planner.plan(matmul(16, 16, 16), 256)
        assert "malformed shared-store entry" in caplog.text
        # The bad entry did not poison the answer: a real solve happened.
        assert planner.stats.structure_solves == 1
        assert planner.stats.shared_hits == 0
