"""Service-level observability tests.

Complements the unit suite in ``test_obs.py`` and the soak's scrape
contract: here every count is pinned *exactly* against a live
multi-worker server under parallel mixed traffic, golden payloads are
checked byte-for-byte with tracing on (meta-only by construction), and
trace ids are followed through headers, bodies, the response-cache
splice, deadline 504s, and internal 500s.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.api import SCHEMA_VERSION, Session
from repro.cli import main
from repro.library.problems import matmul
from repro.obs import global_registry
from repro.serve import make_server
from repro.tune.evaluate import MIN_PARALLEL_CANDIDATES, evaluate_candidates
from repro.util import faults

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "analyze_payloads.json").read_text()
)
ANALYZE = {"problem": "matmul", "sizes": [64, 64, 64], "cache_words": 1024}


@pytest.fixture(scope="module")
def service():
    """One shared server for the module: pool-sized, response cache on."""
    server = make_server(
        port=0,
        session=Session(workers=0),
        workers=2,
        max_inflight=32,
        response_cache=64,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _request(base, path, blob=None, headers=None):
    data = None
    if blob is not None:
        data = blob if isinstance(blob, bytes) else json.dumps(blob).encode()
    req = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), exc.headers


def _post(base, path, blob, headers=None):
    status, raw, hdrs = _request(base, path, blob, headers)
    return status, json.loads(raw), hdrs


def _get(base, path):
    status, raw, hdrs = _request(base, path)
    return status, json.loads(raw), hdrs


def _scrape(base):
    """(content_type, text) from one ``GET /v1/metrics``."""
    with urllib.request.urlopen(base + "/v1/metrics", timeout=10) as resp:
        return resp.headers.get("Content-Type", ""), resp.read().decode("utf-8")


def _samples(text):
    """Prometheus text -> ``{'name{labels}': float}`` (comments skipped)."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        out[name] = float(value)
    return out


def _requests_total(samples, route, status):
    return sum(
        value
        for key, value in samples.items()
        if key.startswith("repro_requests_total{")
        and f'route="{route}"' in key
        and f'status="{status}"' in key
    )


def _assert_timings(meta):
    assert sorted(meta["timings"]) == ["stages", "total_ms"]
    assert meta["timings"]["total_ms"] >= 0.0
    return meta["trace_id"]


class TestMetricsEndpoint:
    def test_scrape_content_type_and_grammar(self, service):
        _, base = service
        status, body, _ = _post(base, "/v1/analyze", ANALYZE)
        assert status == 200
        ctype, text = _scrape(base)
        assert ctype.startswith("text/plain; version=0.0.4")
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert "# TYPE repro_request_seconds histogram" in lines
        samples = _samples(text)
        assert _requests_total(samples, "/v1/analyze", "200") >= 1
        assert samples["repro_draining"] == 0.0

    def test_post_metrics_is_405(self, service):
        _, base = service
        status, body, _ = _post(base, "/v1/metrics", {})
        assert status == 405
        assert body["payload"]["status"] == 405

    def test_exact_counts_under_parallel_mixed_traffic(self, service):
        """Scrape deltas match the traffic exactly — nothing lost, nothing
        double-counted — across handler threads, coalescing, and the
        response-cache splice path."""
        _, base = service
        n_threads, per_thread = 6, 8
        good = per_thread // 2 * n_threads
        bad = per_thread // 2 * n_threads

        _, before_text = _scrape(base)
        before = _samples(before_text)
        outcomes: list[list[tuple[str, int]]] = [[] for _ in range(n_threads)]

        def worker(idx: int) -> None:
            for i in range(per_thread):
                if i % 2 == 0:
                    blob = {
                        "problem": "matmul",
                        "sizes": [16, 16, 16],
                        "cache_words": 64 + idx,  # distinct per thread
                    }
                    status, _, _ = _post(base, "/v1/analyze", blob)
                    outcomes[idx].append(("good", status))
                else:
                    status, _, _ = _post(base, "/v1/analyze", {"problem": "matmul"})
                    outcomes[idx].append(("bad", status))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        flat = [item for per in outcomes for item in per]
        assert all(s == 200 for kind, s in flat if kind == "good")
        assert all(s == 400 for kind, s in flat if kind == "bad")

        _, after_text = _scrape(base)
        after = _samples(after_text)
        d200 = _requests_total(after, "/v1/analyze", "200") - _requests_total(
            before, "/v1/analyze", "200"
        )
        d400 = _requests_total(after, "/v1/analyze", "400") - _requests_total(
            before, "/v1/analyze", "400"
        )
        assert d200 == good
        assert d400 == bad
        hist_key = 'repro_request_seconds_count{route="/v1/analyze"}'
        assert after[hist_key] - before.get(hist_key, 0.0) == good + bad

    def test_counters_are_monotonic_across_scrapes(self, service):
        _, base = service
        before = _samples(_scrape(base)[1])
        _post(base, "/v1/analyze", ANALYZE)
        after = _samples(_scrape(base)[1])
        for key, value in before.items():
            if key.startswith(("repro_requests_total", "repro_rejected_total")):
                assert after.get(key, -1.0) >= value, key


class TestTracePropagation:
    def test_header_id_is_echoed_in_meta_and_header(self, service):
        _, base = service
        status, body, headers = _post(
            base, "/v1/analyze", ANALYZE, headers={"X-Trace-Id": "client-id-1"}
        )
        assert status == 200
        assert body["meta"]["trace_id"] == "client-id-1"
        assert headers.get("X-Trace-Id") == "client-id-1"
        _assert_timings(body["meta"])

    def test_id_is_minted_when_absent(self, service):
        _, base = service
        status, body, headers = _post(base, "/v1/analyze", ANALYZE)
        assert status == 200
        tid = body["meta"]["trace_id"]
        assert len(tid) == 16 and int(tid, 16) >= 0
        assert headers.get("X-Trace-Id") == tid

    def test_body_field_wins_over_header(self, service):
        _, base = service
        status, body, headers = _post(
            base,
            "/v1/analyze",
            {**ANALYZE, "trace_id": "body-id"},
            headers={"X-Trace-Id": "header-id"},
        )
        assert status == 200
        assert body["meta"]["trace_id"] == "body-id"
        assert headers.get("X-Trace-Id") == "body-id"

    def test_malformed_id_is_ignored_not_rejected(self, service):
        _, base = service
        status, body, _ = _post(
            base, "/v1/analyze", ANALYZE, headers={"X-Trace-Id": "not a trace id!"}
        )
        assert status == 200
        tid = body["meta"]["trace_id"]
        assert len(tid) == 16 and int(tid, 16) >= 0

    def test_splice_path_echoes_the_callers_id(self, service):
        _, base = service
        blob = {"problem": "matmul", "sizes": [32, 32, 32], "cache_words": 2048}
        status, first, _ = _post(base, "/v1/analyze", blob)
        assert status == 200
        status, body, headers = _post(
            base, "/v1/analyze", blob, headers={"X-Trace-Id": "retry-7"}
        )
        assert status == 200
        assert body["meta"]["response_cache"] is True
        assert body["meta"]["trace_id"] == "retry-7"
        assert headers.get("X-Trace-Id") == "retry-7"
        # No handler ran, so the splice carries a stage-free timing.
        assert body["meta"]["timings"]["stages"] == {}
        assert body["payload"] == first["payload"]

    def test_deadline_504_detail_carries_trace_id(self):
        # A server with a *fresh* Session: the deadline needs a cold
        # solve to interrupt (warm cache hits finish inside any budget).
        server = make_server(port=0, session=Session())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with faults.inject("slow-lp"):
                status, body, headers = _post(
                    base,
                    "/v1/analyze",
                    {**ANALYZE, "deadline_ms": 1, "trace_id": "deadline-trace"},
                )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert status == 504
        detail = body["payload"]["detail"]
        assert detail["reason"] == "deadline_exceeded"
        assert detail["trace_id"] == "deadline-trace"
        assert headers.get("X-Trace-Id") == "deadline-trace"

    def test_internal_500_correlates_error_and_trace_ids(
        self, service, monkeypatch, caplog
    ):
        _, base = service

        def boom(self, *args, **kwargs):
            raise RuntimeError("obs internal detail")

        monkeypatch.setattr(Session, "analyze", boom)
        # A body the response cache has never seen, so the request must
        # reach the (now exploding) session instead of splicing a hit.
        with caplog.at_level("ERROR", logger="repro.serve"):
            status, body, headers = _post(
                base,
                "/v1/analyze",
                {"problem": "matmul", "sizes": [24, 24, 24], "cache_words": 96},
                headers={"X-Trace-Id": "incident-1"},
            )
        assert status == 500
        detail = body["payload"]["detail"]
        assert detail["reason"] == "internal"
        assert detail["trace_id"] == "incident-1"
        error_id = detail["error_id"]
        assert len(error_id) == 12 and error_id == error_id.lower()
        assert headers.get("X-Trace-Id") == "incident-1"
        # The log line is structured JSON joining both correlation ids
        # with the traceback the body never leaks.
        logged = None
        for record in caplog.records:
            try:
                blob = json.loads(record.message)
            except ValueError:
                continue
            if blob.get("event") == "internal-error":
                logged = blob
        assert logged is not None
        assert logged["error_id"] == error_id
        assert logged["trace_id"] == "incident-1"
        assert "obs internal detail" in logged["traceback"]


class TestGoldenByteIdentity:
    @staticmethod
    def _payload_bytes(raw: bytes) -> bytes:
        start = raw.index(b'"payload": ') + len(b'"payload": ')
        return raw[start:raw.index(b', "meta": ')]

    def test_golden_payload_is_byte_identical_with_tracing_on(self, service):
        """Tracing is meta-only: the payload bytes are identical with
        tracing on and off, on the fresh path and on the splice, and the
        parsed payload is exactly the golden one."""
        from repro.obs import trace as obs_trace

        _, base = service
        obs_trace.set_enabled(False)
        try:
            status, untraced, _ = _request(base, "/v1/analyze", ANALYZE)
            assert status == 200
        finally:
            obs_trace.set_enabled(True)
        expected = self._payload_bytes(untraced)
        assert json.loads(untraced)["meta"].get("trace_id") is None
        for attempt in ("traced", "response-cache hit"):
            status, raw, _ = _request(base, "/v1/analyze", ANALYZE)
            assert status == 200, (attempt, raw)
            body = json.loads(raw)
            assert body["payload"] == GOLDEN["analyze_matmul"], attempt
            assert self._payload_bytes(raw) == expected, attempt
            assert "trace_id" in body["meta"], attempt


class TestWorkerDeltaMerges:
    def test_evaluate_candidates_ships_every_workers_observations(self):
        """workers=2 evaluation merges one delta per candidate — no
        observation is lost crossing the pool boundary."""
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                assert pool.submit(len, ()).result(timeout=60) == 0
        except Exception:
            pytest.skip("no usable process pool in this sandbox")
        nest = matmul(64, 64, 64)
        candidates = [
            [4 + i, 4, 4] for i in range(MIN_PARALLEL_CANDIDATES)
        ]
        registry = global_registry()
        merges = registry.counter("repro_worker_merges_total")
        evals = registry.counter("repro_worker_evaluations_total")
        hist = registry.histogram("repro_worker_eval_seconds")
        before = (merges.value, evals.value, hist.count)
        results = evaluate_candidates(nest, candidates, [64, 1024], workers=2)
        assert len(results) == len(candidates)
        if merges.value == before[0]:
            pytest.skip("pool fell back to serial; no deltas to merge")
        assert merges.value - before[0] == len(candidates)
        assert evals.value - before[1] == len(candidates)
        assert hist.count - before[2] == len(candidates)


class TestDrainVisibility:
    def test_metrics_and_health_stay_scrapeable_while_draining(self):
        server = make_server(port=0, session=Session(workers=0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            server.drain()
            status, body, _ = _get(base, "/v1/health")
            assert status == 200
            assert body["payload"]["server"]["draining"] is True
            ctype, text = _scrape(base)
            assert ctype.startswith("text/plain")
            assert _samples(text)["repro_draining"] == 1.0
            status, body, headers = _post(base, "/v1/analyze", ANALYZE)
            assert status == 503
            assert body["payload"]["detail"]["reason"] == "draining"
            assert headers.get("Retry-After") == "5"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_server_stats_snapshot_is_atomic(self):
        """The health/metrics snapshot never shows torn state mid-drain:
        fields mutated together under ``_stats_lock`` are always seen
        together."""
        server = make_server(port=0, session=Session(workers=0))
        try:
            stop = threading.Event()

            def writer():
                while not stop.is_set():
                    with server._stats_lock:
                        server._requests_served += 1
                        server._route_counts["/hammer"] = server._requests_served
                        server.draining = server._requests_served % 2 == 1

            torn = []

            def reader():
                for _ in range(2000):
                    snap = server._server_stats()
                    served = snap["requests_served"]
                    if snap["requests_by_route"].get("/hammer", 0) != served:
                        torn.append(snap)
                    if served and snap["draining"] != (served % 2 == 1):
                        torn.append(snap)

            w = threading.Thread(target=writer)
            readers = [threading.Thread(target=reader) for _ in range(3)]
            w.start()
            for r in readers:
                r.start()
            for r in readers:
                r.join()
            stop.set()
            w.join()
            assert torn == []
        finally:
            server.server_close()


class TestSessionAndCliSurface:
    def test_session_metrics_shape(self):
        from repro.api import AnalyzeRequest

        session = Session(workers=0)
        session.analyze(AnalyzeRequest(nest=matmul(16, 16, 16), cache_words=64))
        stats = session.metrics()
        assert sorted(stats) == ["planner_stats", "registry", "shared_cache"]
        summary = stats["registry"]
        assert sorted(summary) == ["counters", "gauges", "histograms"]
        assert isinstance(stats["planner_stats"], dict)

    def test_cli_stats_prints_prometheus_text(self, capsys):
        from repro.api import AnalyzeRequest

        Session(workers=0).analyze(
            AnalyzeRequest(nest=matmul(16, 16, 16), cache_words=64)
        )
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stage_seconds histogram" in out

    def test_cli_stats_json(self, capsys):
        assert main(["stats", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert sorted(blob) == ["planner_stats", "registry", "shared_cache"]

    def test_cli_stats_url_scrapes_a_live_server(self, service, capsys):
        _, base = service
        assert main(["stats", "--url", base]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert "repro_requests_total" in out


class TestMetaTimingsEverywhere:
    def test_analyze_batch_simulate_and_health_carry_timings(self, service):
        _, base = service
        status, body, _ = _post(base, "/v1/analyze", ANALYZE)
        assert status == 200
        _assert_timings(body["meta"])

        status, body, _ = _post(
            base,
            "/v1/batch",
            {"requests": [
                {"problem": "matmul", "sizes": [8, 8, 8], "cache_words": 64},
                {"problem": "nbody", "sizes": [32, 32], "cache_words": 64},
            ]},
        )
        assert status == 200 and body["count"] == 2
        # One request, one trace: every batch item shares the id.
        ids = {_assert_timings(item["meta"]) for item in body["results"]}
        assert len(ids) == 1

        status, body, _ = _post(
            base,
            "/v1/simulate",
            {"problem": "nbody", "sizes": [96, 96], "cache_words": 64},
        )
        assert status == 200
        _assert_timings(body["meta"])

        status, body, _ = _get(base, "/v1/health")
        assert status == 200
        assert body["schema_version"] == SCHEMA_VERSION
        _assert_timings(body["meta"])
