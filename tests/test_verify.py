"""Tests for the independent audit layer (repro.core.verify)."""

from fractions import Fraction as F

import pytest

import repro
from repro.core.tiling import TileShape
from repro.core.verify import check_dual_certificate, check_tile, verify_analysis
from repro.library.problems import matmul, nbody


class TestCheckTile:
    def test_feasible_tile_passes(self):
        nest = matmul(64, 64, 64)
        tile = TileShape(nest=nest, blocks=(8, 8, 8))
        res = check_tile(nest, tile, 64, F(3, 2))
        assert res.ok
        assert res.volume == 512
        assert res.utilisation == 1.0

    def test_budget_violation_reported(self):
        nest = matmul(64, 64, 64)
        tile = TileShape(nest=nest, blocks=(16, 16, 16))
        res = check_tile(nest, tile, 64, F(3, 2))
        assert not res.feasible
        assert any("footprint" in v for v in res.violations)

    def test_volume_exceeding_claim_reported(self):
        nest = matmul(64, 64, 64)
        tile = TileShape(nest=nest, blocks=(8, 8, 8))
        res = check_tile(nest, tile, 64, F(1))  # claim tile <= M^1 = 64
        assert res.feasible  # footprints fine
        assert any("exceeds claimed bound" in v for v in res.violations)
        assert not res.ok

    def test_aggregate_budget(self):
        nest = matmul(64, 64, 64)
        tile = TileShape(nest=nest, blocks=(8, 8, 8))
        assert not check_tile(nest, tile, 64, F(3, 2), budget="aggregate").feasible
        assert check_tile(nest, tile, 200, F(3, 2), budget="aggregate").feasible

    def test_bad_budget(self):
        nest = matmul(4, 4, 4)
        with pytest.raises(ValueError):
            check_tile(nest, TileShape(nest=nest, blocks=(1, 1, 1)), 4, F(1), budget="x")


class TestCheckDualCertificate:
    def test_valid_matmul_certificate(self):
        nest = matmul(64, 64, 64)
        betas = [F(1), F(1), F(1)]
        res = check_dual_certificate(nest, betas, zeta=[0, 0, 0], s=[F(1, 2)] * 3)
        assert res.ok
        assert res.certified_exponent == F(3, 2)

    def test_beta_weighted_certificate(self):
        # The small-L3 certificate: zeta = (0,0,1), s = (0,1,0) certifies
        # 1 + beta3.
        nest = matmul(64, 64, 64)
        res = check_dual_certificate(
            nest, [F(1), F(1), F(1, 4)], zeta=[0, 0, 1], s=[0, 1, 0]
        )
        assert res.ok
        assert res.certified_exponent == F(5, 4)

    def test_covering_violation_detected(self):
        nest = matmul(64, 64, 64)
        res = check_dual_certificate(nest, [1, 1, 1], zeta=[0, 0, 0], s=[F(1, 2), F(1, 2), 0])
        assert not res.ok
        assert any("covering row" in v for v in res.violations)

    def test_negative_multiplier_detected(self):
        nest = matmul(64, 64, 64)
        res = check_dual_certificate(nest, [1, 1, 1], zeta=[-1, 0, 0], s=[1, 1, 1])
        assert not res.ok

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            check_dual_certificate(matmul(4, 4, 4), [1, 1], zeta=[0, 0, 0], s=[0, 0, 0])


class TestVerifyAnalysis:
    def test_clean_analysis_passes(self):
        for nest in [matmul(2**10, 2**10, 2**4), nbody(2**8, 2**8)]:
            analysis = repro.analyze(nest, cache_words=2**12)
            assert verify_analysis(analysis) == []

    def test_catalog_sweep_passes(self):
        from repro.library.problems import catalog

        for name, nest in catalog().items():
            analysis = repro.analyze(nest, cache_words=2**10)
            problems = verify_analysis(analysis)
            assert problems == [], (name, problems)

    def test_tampered_tile_detected(self):
        import dataclasses

        nest = matmul(2**8, 2**8, 2**8)
        analysis = repro.analyze(nest, cache_words=2**8)
        bad_tile = TileShape(nest=nest, blocks=(64, 64, 64))  # footprint 4096 > 256
        tampered = dataclasses.replace(
            analysis, tiling=dataclasses.replace(analysis.tiling, tile=bad_tile)
        )
        problems = verify_analysis(tampered)
        assert any("tile:" in p for p in problems)

    def test_tampered_certificate_detected(self):
        import dataclasses

        nest = matmul(2**8, 2**8, 2**8)
        analysis = repro.analyze(nest, cache_words=2**8)
        bad_dual = dataclasses.replace(analysis.certificate.dual, s=(F(0), F(0), F(0)))
        tampered = dataclasses.replace(
            analysis, certificate=dataclasses.replace(analysis.certificate, dual=bad_dual)
        )
        problems = verify_analysis(tampered)
        assert any("certificate" in p for p in problems)
