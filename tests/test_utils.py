"""Tests for the exact-arithmetic utility layer (repro.util)."""

from fractions import Fraction as F

import pytest

from repro.util.linalg import SingularMatrixError, rank, solve_square
from repro.util.rationals import (
    approx_log,
    beta_vector,
    exact_log,
    format_affine,
    format_fraction,
    integer_nth_root,
    is_power,
    log_ratio,
    pow_fraction,
)
from repro.util.subsets import all_subsets, lex_tuples, powerset_size, subsets_of


class TestIntegerNthRoot:
    def test_exact_roots(self):
        assert integer_nth_root(27, 3) == 3
        assert integer_nth_root(2**40, 2) == 2**20
        assert integer_nth_root(10**30, 3) == 10**10

    def test_floors(self):
        assert integer_nth_root(26, 3) == 2
        assert integer_nth_root(28, 3) == 3

    def test_edge_cases(self):
        assert integer_nth_root(0, 5) == 0
        assert integer_nth_root(1, 5) == 1
        assert integer_nth_root(7, 1) == 7

    def test_huge_values_no_float_error(self):
        big = (10**20 + 1) ** 2
        assert integer_nth_root(big, 2) == 10**20 + 1
        assert integer_nth_root(big - 1, 2) == 10**20

    def test_validation(self):
        with pytest.raises(ValueError):
            integer_nth_root(-1, 2)
        with pytest.raises(ValueError):
            integer_nth_root(4, 0)


class TestLogs:
    def test_is_power(self):
        assert is_power(8, 2) == 3
        assert is_power(1, 2) == 0
        assert is_power(12, 2) is None
        assert is_power(0, 2) is None

    def test_exact_log_integer_exponent(self):
        assert exact_log(2**10, 2) == 10
        assert exact_log(65536, 16) == 4

    def test_exact_log_rational_exponent(self):
        # 8 = 4^(3/2).
        assert exact_log(8, 4) == F(3, 2)
        # 32 = 2^(5) and 32 = 1024^(1/2).
        assert exact_log(32, 1024) == F(1, 2)

    def test_exact_log_none_for_non_powers(self):
        assert exact_log(10, 2) is None
        assert exact_log(7, 3) is None

    def test_approx_log_precision(self):
        import math

        val = approx_log(10, 2)
        assert abs(float(val) - math.log2(10)) < 1e-12

    def test_log_ratio_prefers_exact(self):
        assert log_ratio(2**8, 2**16) == F(1, 2)

    def test_beta_vector(self):
        assert beta_vector([2**8, 2**4], 2**16) == [F(1, 2), F(1, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_log(0, 2)
        with pytest.raises(ValueError):
            approx_log(4, 1)


class TestPowFraction:
    def test_integer_exponent(self):
        assert pow_fraction(2, F(10)) == 1024.0

    def test_negative_exponent(self):
        assert pow_fraction(2, F(-3)) == 0.125

    def test_exact_rational_exponent(self):
        assert pow_fraction(2**16, F(3, 2)) == float(2**24)

    def test_inexact_falls_back_to_float(self):
        import math

        got = pow_fraction(10, F(1, 3))
        assert abs(got - 10 ** (1 / 3)) < 1e-12

    def test_huge_denominator_no_hang(self):
        # Regression: approx-log exponents (denominator ~1e15) must not
        # attempt exact integer root extraction.
        val = pow_fraction(2**15, F(10**15 + 7, 3 * 10**15))
        assert val == pytest.approx((2**15) ** ((10**15 + 7) / (3 * 10**15)))


class TestFormatting:
    def test_format_fraction(self):
        assert format_fraction(F(3)) == "3"
        assert format_fraction(F(3, 2)) == "3/2"

    def test_format_affine(self):
        assert format_affine(F(1), [F(0), F(1)], ["b1", "b2"]) == "1 + b2"
        assert format_affine(F(0), [F(1), F(1)], ["b1", "b2"]) == "b1 + b2"
        assert format_affine(F(3, 2), [F(0), F(0)], ["b1", "b2"]) == "3/2"
        assert format_affine(F(0), [F(0), F(0)], ["b1", "b2"]) == "0"
        assert format_affine(F(1), [F(-1), F(1, 2)], ["x", "y"]) == "1 - x + 1/2*y"


class TestSubsets:
    def test_all_subsets_count_and_order(self):
        subs = list(all_subsets(3))
        assert len(subs) == 8
        assert subs[0] == ()
        assert subs[-1] == (0, 1, 2)
        assert len(set(subs)) == 8

    def test_subsets_of(self):
        assert list(subsets_of("ab")) == [(), ("a",), ("b",), ("a", "b")]

    def test_powerset_size(self):
        assert powerset_size(5) == 32

    def test_lex_tuples(self):
        pts = list(lex_tuples([2, 3]))
        assert pts == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_lex_tuples_empty_dims(self):
        assert list(lex_tuples([])) == [()]
        assert list(lex_tuples([2, 0])) == []
        with pytest.raises(ValueError):
            list(lex_tuples([-1]))


class TestLinalg:
    def test_solve_square(self):
        A = [[F(2), F(1)], [F(1), F(3)]]
        x = solve_square(A, [F(5), F(10)])
        assert x == [F(1), F(3)]

    def test_singular_detected(self):
        with pytest.raises(SingularMatrixError):
            solve_square([[F(1), F(2)], [F(2), F(4)]], [F(1), F(2)])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_square([[F(1)]], [F(1), F(2)])

    def test_needs_pivoting(self):
        # Zero leading pivot forces a row swap.
        A = [[F(0), F(1)], [F(1), F(0)]]
        assert solve_square(A, [F(7), F(9)]) == [F(9), F(7)]

    def test_rank(self):
        assert rank([[F(1), F(2)], [F(2), F(4)]]) == 1
        assert rank([[F(1), F(0)], [F(0), F(1)]]) == 2
        assert rank([]) == 0
        assert rank([[F(0), F(0)]]) == 0

    def test_exactness_with_big_rationals(self):
        big = F(10**18, 10**18 + 1)
        x = solve_square([[big]], [F(1)])
        assert x == [1 / big]
