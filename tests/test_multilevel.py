"""Tests for multi-level trace simulation (repro.simulate.multilevel)."""

from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling
from repro.library.problems import matmul, matvec
from repro.simulate.multilevel import (
    simulate_hierarchical_tiling_trace,
    simulate_hierarchy_trace,
)

H = MemoryHierarchy(capacities=(48, 192, 768))


class TestStackProperty:
    def test_traffic_monotone_in_capacity(self):
        # LRU inclusion/stack property: larger caches never miss more.
        nest = matmul(16, 16, 16)
        rep = simulate_hierarchy_trace(nest, H, tile=None, schedule="untiled")
        words = [b.words for b in rep.boundaries]
        assert words[0] >= words[1] >= words[2]

    def test_bounds_attached_per_level(self):
        nest = matmul(16, 16, 16)
        rep = simulate_hierarchy_trace(nest, H)
        for b in rep.boundaries:
            assert b.lower_bound > 0
            assert b.ratio == b.words / b.lower_bound

    def test_summary(self):
        nest = matvec(32, 32)
        rep = simulate_hierarchy_trace(nest, H, schedule="untiled")
        text = rep.summary()
        assert "untiled" in text and "M=48" in text


class TestNestedTilingOnHierarchy:
    def test_every_boundary_within_constant(self):
        nest = matmul(24, 24, 24)
        ht = solve_hierarchical_tiling(nest, H, budget="aggregate")
        rep = simulate_hierarchical_tiling_trace(ht)
        for b in rep.boundaries:
            assert b.words >= b.lower_bound * 0.999  # bound validity
            assert b.ratio <= 24, b  # attainability with model constants

    def test_nested_beats_untiled_at_inner_levels(self):
        nest = matmul(24, 24, 24)
        ht = solve_hierarchical_tiling(nest, H, budget="aggregate")
        tiled = simulate_hierarchical_tiling_trace(ht)
        untiled = simulate_hierarchy_trace(nest, H, tile=None, schedule="untiled")
        # The innermost boundary is where blocking matters most.
        assert tiled.boundaries[0].words <= untiled.boundaries[0].words
