"""Property-based tests (hypothesis) over random projective loop nests.

These check the paper's theorems as *universally quantified* claims on
randomly generated problem structures, not just the §6 examples:

* Theorem 3 (tightness) holds exactly for every nest and cache size;
* the Theorem-2 subset bounds dominate the full bound (monotonicity);
* the integer tile from round-and-grow is always feasible;
* analyses are invariant under loop permutation;
* the multiparametric value function agrees with the LP everywhere;
* the analytic traffic formulas match explicit tile enumeration;
* exact simplex and scipy HiGHS agree on every generated LP.
"""

from fractions import Fraction as F

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.alpha_family import optimal_tile_family
from repro.core.bounds import subset_exponent, tile_exponent
from repro.core.duality import theorem3_certificate
from repro.core.loopnest import ArrayRef, LoopNest
from repro.core.mplp import parametric_tile_exponent
from repro.core.tiling import TileShape, build_tiling_lp, solve_tiling
from repro.util.rationals import pow_fraction

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def projective_nests(draw, max_depth: int = 4, max_arrays: int = 4, max_exp: int = 8):
    """Random valid projective nests with power-of-two bounds."""
    d = draw(st.integers(1, max_depth))
    n = draw(st.integers(1, max_arrays))
    supports = []
    for _ in range(n):
        support = draw(
            st.sets(st.integers(0, d - 1), min_size=0, max_size=d).map(
                lambda s: tuple(sorted(s))
            )
        )
        supports.append(list(support))
    # Ensure every loop is covered (the LoopNest invariant).
    covered = set()
    for s in supports:
        covered.update(s)
    for loop in range(d):
        if loop not in covered:
            idx = draw(st.integers(0, n - 1))
            supports[idx] = sorted(set(supports[idx]) | {loop})
    bounds = tuple(2 ** draw(st.integers(0, max_exp)) for _ in range(d))
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=tuple(s), is_output=(j == 0))
        for j, s in enumerate(supports)
    )
    return LoopNest(
        name="random", loops=tuple(f"x{i}" for i in range(d)), bounds=bounds, arrays=arrays
    )


cache_sizes = st.sampled_from([2, 4, 16, 64, 256, 2**10, 2**14])


class TestTheorem3:
    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes)
    def test_tight_for_every_nest(self, nest, M):
        cert = theorem3_certificate(nest, M)
        assert cert.primal_value == cert.dual_value

    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes)
    def test_tiling_lp_equals_theorem2_bound(self, nest, M):
        assert solve_tiling(nest, M).exponent == tile_exponent(nest, M)


class TestTheorem2Monotonicity:
    @SETTINGS
    @given(nest=projective_nests(max_depth=3), M=cache_sizes, data=st.data())
    def test_subset_bounds_dominate_full(self, nest, M, data):
        Q = data.draw(
            st.sets(st.integers(0, nest.depth - 1), max_size=nest.depth).map(sorted)
        )
        full = tile_exponent(nest, M)
        assert subset_exponent(nest, M, Q) >= full

    @SETTINGS
    @given(nest=projective_nests(max_depth=3), M=cache_sizes, data=st.data())
    def test_enlarging_subset_never_hurts(self, nest, M, data):
        d = nest.depth
        Q1 = set(data.draw(st.sets(st.integers(0, d - 1), max_size=d)))
        extra = set(data.draw(st.sets(st.integers(0, d - 1), max_size=d)))
        Q2 = Q1 | extra
        assert subset_exponent(nest, M, Q2) <= subset_exponent(nest, M, Q1)


class TestTiling:
    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes)
    def test_integer_tile_feasible(self, nest, M):
        sol = solve_tiling(nest, M)
        assert sol.tile.is_feasible(M, "per-array")
        for b, L in zip(sol.tile.blocks, nest.bounds):
            assert 1 <= b <= L

    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes)
    def test_aggregate_tile_feasible(self, nest, M):
        from hypothesis import assume

        assume(M >= nest.num_arrays)  # smaller caches are rejected (unit tile can't fit)
        sol = solve_tiling(nest, M, budget="aggregate")
        assert sol.tile.is_feasible(M, "aggregate")

    def test_aggregate_rejects_tiny_cache(self):
        from repro.library.problems import matmul

        with pytest.raises(ValueError, match="aggregate budget"):
            solve_tiling(matmul(4, 4, 4), 2, budget="aggregate")

    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes)
    def test_fractional_volume_bounds_integer(self, nest, M):
        sol = solve_tiling(nest, M)
        assert sol.tile.volume <= pow_fraction(M, sol.exponent) * (1 + 1e-9)

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_exp=3), M=st.sampled_from([2, 3, 4, 8, 16]))
    def test_integer_tile_matches_bruteforce_scale(self, nest, M):
        # Round-and-grow is within 2^d of the exhaustive integer optimum
        # (each side at least half its fractional value after flooring).
        from repro.core.bruteforce import best_rectangle

        sol = solve_tiling(nest, M)
        exact = best_rectangle(nest, M)
        assert sol.tile.volume <= exact.volume
        assert exact.volume <= sol.tile.volume * (2**nest.depth)


class TestInvariances:
    @SETTINGS
    @given(nest=projective_nests(), M=cache_sizes, data=st.data())
    def test_permutation_invariance(self, nest, M, data):
        order = data.draw(st.permutations(list(range(nest.depth))))
        assert tile_exponent(nest.permuted(order), M) == tile_exponent(nest, M)

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_backend_agreement(self, nest, M):
        # Exact simplex vs scipy HiGHS on the tiling LP.
        report = build_tiling_lp(nest, M).solve(backend="both")
        assert report.is_optimal


class TestMultiparametric:
    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_pvf_agrees_with_lp(self, nest, M):
        pvf = parametric_tile_exponent(nest)
        betas = nest.betas(M)
        assert pvf.evaluate(betas) == tile_exponent(nest, M, betas=betas)

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), data=st.data())
    def test_pvf_monotone_in_beta(self, nest, data):
        pvf = parametric_tile_exponent(nest)
        d = nest.depth
        betas = [F(data.draw(st.integers(0, 32)), 16) for _ in range(d)]
        bumped = list(betas)
        idx = data.draw(st.integers(0, d - 1))
        bumped[idx] += F(data.draw(st.integers(0, 16)), 16)
        assert pvf.evaluate(bumped) >= pvf.evaluate(betas)

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), data=st.data())
    def test_pvf_concave_along_segments(self, nest, data):
        # f is a min of affine functions => concave: f(mid) >= avg(f(ends)).
        pvf = parametric_tile_exponent(nest)
        d = nest.depth
        a = [F(data.draw(st.integers(0, 32)), 16) for _ in range(d)]
        b = [F(data.draw(st.integers(0, 32)), 16) for _ in range(d)]
        mid = [(x + y) / 2 for x, y in zip(a, b)]
        assert pvf.evaluate(mid) * 2 >= pvf.evaluate(a) + pvf.evaluate(b)


class TestOptimalFamily:
    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_all_vertices_optimal_and_feasible(self, nest, M):
        fam = optimal_tile_family(nest, M)
        for vertex in fam.vertices:
            assert sum(vertex) == fam.exponent
            assert fam.contains(vertex)

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_lp_vertex_in_family(self, nest, M):
        sol = solve_tiling(nest, M)
        fam = optimal_tile_family(nest, M)
        assert fam.contains(sol.lambdas)


class TestTrafficFormulas:
    @SETTINGS
    @given(
        nest=projective_nests(max_depth=3, max_arrays=3, max_exp=3),
        data=st.data(),
    )
    def test_no_reuse_formula_equals_enumeration(self, nest, data):
        from itertools import product as iproduct

        from repro.simulate.footprint import array_tile_loads

        blocks = tuple(
            data.draw(st.integers(1, L)) for L in nest.bounds
        )
        tile = TileShape(nest=nest, blocks=blocks)
        for j, arr in enumerate(nest.arrays):
            total = 0
            for starts in iproduct(
                *(range(0, L, b) for L, b in zip(nest.bounds, blocks))
            ):
                extents = [
                    min(b, L - s) for s, b, L in zip(starts, blocks, nest.bounds)
                ]
                fp = 1
                for i in arr.support:
                    fp *= extents[i]
                total += fp
            assert array_tile_loads(nest, tile, j, reuse=False) == total

    @SETTINGS
    @given(
        nest=projective_nests(max_depth=3, max_arrays=3, max_exp=3),
        data=st.data(),
    )
    def test_reuse_never_exceeds_no_reuse(self, nest, data):
        from repro.simulate.footprint import array_tile_loads

        blocks = tuple(data.draw(st.integers(1, L)) for L in nest.bounds)
        tile = TileShape(nest=nest, blocks=blocks)
        order = tuple(data.draw(st.permutations(list(range(nest.depth)))))
        for j in range(nest.num_arrays):
            with_reuse = array_tile_loads(nest, tile, j, order=order, reuse=True)
            without = array_tile_loads(nest, tile, j, reuse=False)
            assert with_reuse <= without


class TestAuditLayer:
    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_theorem3_duals_pass_independent_audit(self, nest, M):
        # The solver-independent weak-duality checker must accept every
        # dual point the pipeline produces, and recompute its objective.
        from repro.core.verify import check_dual_certificate

        cert = theorem3_certificate(nest, M)
        res = check_dual_certificate(nest, cert.betas, cert.dual.zeta, cert.dual.s)
        assert res.ok
        assert res.certified_exponent == cert.dual_value

    @SETTINGS
    @given(nest=projective_nests(max_depth=3, max_arrays=3), M=cache_sizes)
    def test_full_analysis_audits_clean(self, nest, M):
        import repro
        from repro.core.verify import verify_analysis

        analysis = repro.analyze(nest, M)
        assert verify_analysis(analysis) == []


class TestHierarchyProperties:
    @SETTINGS
    @given(
        nest=projective_nests(max_depth=3, max_arrays=3),
        data=st.data(),
    )
    def test_nesting_and_feasibility(self, nest, data):
        from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling

        caps = sorted(
            data.draw(
                st.sets(st.sampled_from([4, 16, 64, 256, 2**10, 2**14]), min_size=1, max_size=3)
            )
        )
        ht = solve_hierarchical_tiling(nest, MemoryHierarchy(capacities=tuple(caps)))
        for lvl in ht.levels:
            assert lvl.tile.is_feasible(lvl.capacity, "per-array")
        for inner, outer in zip(ht.levels, ht.levels[1:]):
            assert all(a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks))


class TestTraceOracle:
    @SETTINGS
    @given(
        nest=projective_nests(max_depth=2, max_arrays=3, max_exp=2),
        M=st.sampled_from([2, 4, 8, 16]),
    )
    def test_lru_traffic_at_least_belady(self, nest, M):
        from repro.machine.model import MachineModel
        from repro.simulate.trace_sim import run_trace_simulation

        machine = MachineModel(cache_words=M)
        lru = run_trace_simulation(nest, machine, policy="lru")
        bel = run_trace_simulation(nest, machine, policy="belady")
        assert bel.meta["misses"] <= lru.meta["misses"]

    @SETTINGS
    @given(
        nest=projective_nests(max_depth=2, max_arrays=3, max_exp=2),
        M=st.sampled_from([4, 8, 16]),
    )
    def test_trace_misses_at_least_compulsory(self, nest, M):
        # Every distinct element must miss at least once.
        from repro.machine.model import MachineModel
        from repro.simulate.trace_sim import run_trace_simulation

        machine = MachineModel(cache_words=M)
        rep = run_trace_simulation(nest, machine, policy="belady")
        assert rep.meta["misses"] >= min(nest.total_footprint(), 1)
        assert rep.loads >= nest.total_footprint() * 0 + rep.meta["misses"]
