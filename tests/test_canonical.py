"""Canonicalization invariants: the plan cache's keying contract.

The canonical form must be (a) invariant under everything the LP is
blind to — loop/array renaming and permutation, bound changes, output
flags — and (b) collision-free across genuinely distinct projection
patterns.  Both properties are exercised over the whole catalog with
seeded random transformations.
"""

import random
from dataclasses import replace

import pytest

from repro.core.canonical import (
    CanonicalForm,
    CanonicalizationError,
    canonical_key,
    canonicalize,
)
from repro.core.loopnest import ArrayRef, LoopNest
from repro.library.problems import CATALOG_BUILDERS, catalog

CATALOG = catalog()


def scrambled(nest: LoopNest, rng: random.Random) -> LoopNest:
    """A random structure-preserving disguise of ``nest``.

    Permutes loops, renames loops and arrays, shuffles array order,
    randomises bounds and output flags — everything canonicalization
    must see through.
    """
    order = list(range(nest.depth))
    rng.shuffle(order)
    permuted = nest.permuted(order)
    bounds = tuple(rng.randint(1, 10_000) for _ in range(nest.depth))
    arrays = list(permuted.arrays)
    rng.shuffle(arrays)
    arrays = [
        replace(arr, name=f"Arr{idx}", is_output=rng.random() < 0.5)
        for idx, arr in enumerate(arrays)
    ]
    return LoopNest(
        name="scrambled",
        loops=tuple(f"loop{i}" for i in range(nest.depth)),
        bounds=bounds,
        arrays=tuple(arrays),
    )


class TestInvariance:
    @pytest.mark.parametrize("name", sorted(CATALOG_BUILDERS), ids=str)
    def test_invariant_under_random_disguises(self, name):
        nest = CATALOG[name]
        reference = canonicalize(nest)
        assert reference.exact
        rng = random.Random(f"canon-{name}")
        for _ in range(25):
            assert canonical_key(scrambled(nest, rng)) == reference.form.key()

    @pytest.mark.parametrize("name", sorted(CATALOG_BUILDERS), ids=str)
    def test_bounds_never_enter_the_key(self, name):
        nest = CATALOG[name]
        key = canonical_key(nest)
        assert canonical_key(nest.with_bounds([1] * nest.depth)) == key
        assert canonical_key(nest.with_bounds([999_999] * nest.depth)) == key

    def test_witness_maps_back(self):
        """loop_order/array_order really transport data between frames."""
        nest = CATALOG["matmul"]
        canon = canonicalize(nest)
        per_loop = tuple(range(nest.depth))
        assert canon.from_canonical(canon.to_canonical(per_loop)) == per_loop
        # The canonical rows are exactly the witnessed re-indexing.
        inverse = {orig: pos for pos, orig in enumerate(canon.loop_order)}
        for row, arr_idx in zip(canon.form.rows, canon.array_order):
            support = nest.arrays[arr_idx].support
            assert row == tuple(sorted(inverse[i] for i in support))

    def test_idempotent_on_canonical_nests(self):
        for name in ("matmul", "mttkrp", "attention_scores"):
            form = canonicalize(CATALOG[name]).form
            assert canonicalize(form.to_nest()).form == form


class TestCollisions:
    def test_known_equivalences(self):
        """Structure sharing the planner banks on: same pattern, one key."""
        assert (
            canonical_key(CATALOG["matmul"])
            == canonical_key(CATALOG["syrk"])
            == canonical_key(CATALOG["fully_connected"])
        )
        # matvec, rank-1 update, and join-aggregation all touch
        # {(0,), (0,1), (1,)} — which array is written is irrelevant.
        assert (
            canonical_key(CATALOG["matvec"])
            == canonical_key(CATALOG["join_aggregate"])
            == canonical_key(CATALOG["outer_product"])
        )

    def test_distinct_structures_never_collide(self):
        distinct = [
            "matmul",
            "matvec",
            "dot_product",
            "nbody",
            "contraction",
            "pointwise_conv",
            "mttkrp",
            "ttm",
            "batched_matmul",
            "tucker_core",
            "attention_scores",
        ]
        keys = {name: canonical_key(CATALOG[name]) for name in distinct}
        seen: dict[str, str] = {}
        for name, key in keys.items():
            assert key not in seen, f"{name} collides with {seen[key]}"
            seen[key] = name

    def test_matmul_never_collides_with_mttkrp(self):
        # The ISSUE's named pair, under disguises on both sides.
        rng = random.Random("collide")
        for _ in range(10):
            left = scrambled(CATALOG["matmul"], rng)
            right = scrambled(CATALOG["mttkrp"], rng)
            assert canonical_key(left) != canonical_key(right)


class TestFormSerialization:
    @pytest.mark.parametrize("name", sorted(CATALOG_BUILDERS), ids=str)
    def test_key_round_trip(self, name):
        form = canonicalize(CATALOG[name]).form
        assert CanonicalForm.from_key(form.key()) == form

    def test_key_shape(self):
        assert canonical_key(CATALOG["matmul"]) == "d3:0.1|0.2|1.2"

    def test_empty_support_round_trip(self):
        form = canonicalize(CATALOG["dot_product"]).form
        assert () in form.rows
        assert CanonicalForm.from_key(form.key()) == form

    def test_to_nest_is_valid_and_generic(self):
        form = canonicalize(CATALOG["pointwise_conv"]).form
        nest = form.to_nest()
        assert nest.depth == form.depth
        assert tuple(sorted(a.support for a in nest.arrays)) == form.rows

    def test_malformed_key_rejected(self):
        with pytest.raises(CanonicalizationError):
            CanonicalForm.from_key("nonsense")

    def test_invalid_forms_rejected(self):
        with pytest.raises(CanonicalizationError):
            CanonicalForm(depth=2, rows=((1, 0),))  # not increasing
        with pytest.raises(CanonicalizationError):
            CanonicalForm(depth=1, rows=((0, 1),))  # out of range
        with pytest.raises(CanonicalizationError):
            CanonicalForm(depth=2, rows=((1,), (0,)))  # rows unsorted


class TestRefinementQuality:
    def test_deep_path_chain_is_exact_and_fast(self):
        # A depth-9 path chain has 9! loop orders, but refinement keys
        # columns by distance from the endpoints: cells of size <= 2
        # (the mirror symmetry), so the search stays exact.
        d = 9
        arrays = tuple(ArrayRef(f"A{j}", (j, j + 1)) for j in range(d - 1))
        nest = LoopNest(
            name="path9",
            loops=tuple(f"x{i}" for i in range(d)),
            bounds=tuple(4 for _ in range(d)),
            arrays=arrays,
        )
        canon = canonicalize(nest)
        assert canon.exact
        rng = random.Random("chain")
        for _ in range(5):
            assert canonical_key(scrambled(nest, rng)) == canon.form.key()

    def test_fully_symmetric_cycle_hits_the_search_cap(self):
        # A 9-cycle is vertex-transitive: refinement cannot split it and
        # 9! candidates exceed SEARCH_CAP, so the canonicalizer falls
        # back to the deterministic refinement order and says so.
        d = 9
        arrays = tuple(
            ArrayRef(f"A{j}", tuple(sorted((j, (j + 1) % d)))) for j in range(d)
        )
        nest = LoopNest(
            name="cycle9",
            loops=tuple(f"x{i}" for i in range(d)),
            bounds=tuple(4 for _ in range(d)),
            arrays=arrays,
        )
        canon = canonicalize(nest)
        assert not canon.exact
        # The fallback form is still a faithful, re-parseable pattern.
        assert CanonicalForm.from_key(canon.form.key()) == canon.form
        assert canonicalize(nest).form == canon.form  # deterministic
