"""Exhaustive-oracle tests: Theorem 2's rectangle-optimality on tiny instances."""

import pytest

from repro.core.bounds import tile_exponent
from repro.core.bruteforce import best_rectangle, best_subset, max_subset_of_size
from repro.core.tiling import solve_tiling
from repro.library.problems import matmul, matvec, nbody
from repro.util.rationals import pow_fraction


class TestBestRectangle:
    def test_matmul_small(self):
        nest = matmul(4, 4, 4)
        res = best_rectangle(nest, 8)
        # Per-array: b1 b3 <= 8, b1 b2 <= 8, b2 b3 <= 8; best volume is
        # b=(2,4,2)-style giving 16? Check exhaustively against LP bound.
        k = tile_exponent(nest, 8)
        assert res.volume <= pow_fraction(8, k) + 1e-9

    def test_lp_tile_matches_bruteforce(self):
        # On instances where M^lambda is integral, round-and-grow should
        # find a tile as large as the exhaustive optimum.
        nest = matmul(8, 8, 8)
        M = 16
        res = best_rectangle(nest, M)
        sol = solve_tiling(nest, M)
        assert sol.tile.volume == res.volume

    def test_guard_on_large_instances(self):
        with pytest.raises(ValueError):
            best_rectangle(matmul(1024, 1024, 1024), 64)

    def test_budget_aggregate(self):
        nest = nbody(4, 4)
        per = best_rectangle(nest, 8, budget="per-array")
        agg = best_rectangle(nest, 8, budget="aggregate")
        assert agg.volume <= per.volume


CASES = [
    (matmul(2, 2, 2), 2),
    (matmul(2, 2, 2), 3),
    (matmul(2, 2, 2), 4),
    (matmul(2, 2, 4), 4),
    (matvec(4, 4), 3),
    (matvec(4, 4), 4),
    (matvec(4, 4), 6),
    (nbody(4, 4), 3),
    (nbody(4, 4), 4),
    (nbody(4, 5), 4),
    (nbody(2, 8), 5),
]


class TestRectangleOptimality:
    """Theorem 2's structural claim, stated precisely.

    The theorem bounds *arbitrary* subset tiles by ``M**k_hat``, and the
    bound is attained by a (generally fractional) rectangle.  At integer
    granularity a non-rectangular subset can exceed the best *integer*
    rectangle (see ``test_integer_granularity_gap``) while still
    respecting the fractional bound — the claim that matters.
    """

    @pytest.mark.parametrize("nest,M", CASES, ids=lambda x: getattr(x, "name", x))
    def test_theorem2_bounds_arbitrary_subsets(self, nest, M):
        k = tile_exponent(nest, M)
        subset = best_subset(nest, M)
        assert subset.volume <= pow_fraction(M, k) + 1e-9

    @pytest.mark.parametrize("nest,M", CASES, ids=lambda x: getattr(x, "name", x))
    def test_rectangles_are_subsets(self, nest, M):
        assert best_rectangle(nest, M).volume <= best_subset(nest, M).volume

    @pytest.mark.parametrize(
        "nest,M",
        CASES[:1] + CASES[2:],  # all but the M=3 matmul gap case
        ids=lambda x: getattr(x, "name", x),
    )
    def test_integer_rectangles_usually_match(self, nest, M):
        assert best_rectangle(nest, M).volume == best_subset(nest, M).volume

    def test_integer_granularity_gap(self):
        # matmul 2x2x2 with M=3: the best integer rectangle has volume 2,
        # but the 4-point "cross" {origin + unit steps} has per-array
        # footprints exactly 3.  Both sit below M^(3/2) ~ 5.196 — the
        # Theorem-2 bound — illustrating that rectangle optimality is a
        # statement about the fractional bound, not integer tiles.
        nest, M = matmul(2, 2, 2), 3
        assert best_rectangle(nest, M).volume == 2
        assert best_subset(nest, M).volume == 4
        assert 4 <= pow_fraction(M, tile_exponent(nest, M))

    def test_guard_on_subset_size(self):
        with pytest.raises(ValueError):
            best_subset(matmul(4, 4, 4), 8)


class TestMaxSubsetOfSize:
    def test_feasible_size_found(self):
        nest = nbody(4, 4)
        rect = best_rectangle(nest, 3)
        found = max_subset_of_size(nest, 3, rect.volume)
        assert found is not None and len(found) == rect.volume

    def test_infeasible_size_rejected(self):
        nest = nbody(4, 4)
        best = best_subset(nest, 3)
        assert max_subset_of_size(nest, 3, best.volume + 1) is None
