"""Cross-checks: batched trace engine vs the per-access reference oracles.

The batched generator, the chunked LRU, and the stack-distance miss
curve must be *bit-identical* to the seed per-access implementations —
randomized small instances sweep nest shapes, tiles, loop orders, chunk
sizes, line sizes, and every cache capacity (including dirty-line /
write-back accounting and the end-of-run flush).
"""

import numpy as np
import pytest

from repro.core.loopnest import ArrayRef, LoopNest
from repro.core.tiling import TileShape, solve_tiling
from repro.library.problems import matmul, matvec, nbody
from repro.machine.cache import BatchLRU, FullyAssociativeLRU, miss_curve
from repro.machine.model import MachineModel
from repro.machine.native import native_available
from repro.simulate.multilevel import nest_miss_curve
from repro.simulate.trace import (
    MAX_TRACE_ACCESSES,
    AddressMap,
    generate_trace,
    generate_trace_batched,
    trace_length,
)
from repro.simulate.trace_sim import run_trace_simulation

ENGINES = [False] + ([True] if native_available() else [])


def random_nest(rng: np.random.Generator) -> LoopNest:
    """A small random projective nest whose supports cover every loop."""
    d = int(rng.integers(1, 4))
    bounds = tuple(int(rng.integers(1, 7)) for _ in range(d))
    n = int(rng.integers(1, 4))
    supports: list[tuple[int, ...]] = []
    for _ in range(n):
        size = int(rng.integers(0, d + 1))
        supports.append(tuple(sorted(rng.choice(d, size=size, replace=False).tolist())))
    # ensure every loop is covered (LoopNest invariant)
    covered = {i for s in supports for i in s}
    missing = tuple(sorted(set(range(d)) - covered))
    if missing:
        supports.append(missing)
    arrays = tuple(
        ArrayRef(name=f"A{j}", support=s, is_output=(j == 0 or rng.random() < 0.3))
        for j, s in enumerate(supports)
    )
    return LoopNest(
        name="rand", loops=tuple(f"x{i}" for i in range(d)), bounds=bounds, arrays=arrays
    )


def reference_stats(lines, writes, capacity):
    cache = FullyAssociativeLRU(capacity)
    for line, w in zip(lines, writes):
        cache.access(int(line), is_write=bool(w))
    cache.flush()
    s = cache.stats
    return (s.accesses, s.hits, s.misses, s.writebacks)


class TestBatchedTraceGeneration:
    def test_randomized_equivalence_with_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            nest = random_nest(rng)
            tile = (
                None
                if rng.random() < 0.25
                else TileShape(
                    nest=nest,
                    blocks=tuple(int(rng.integers(1, L + 1)) for L in nest.bounds),
                )
            )
            order = tuple(rng.permutation(nest.depth).tolist())
            chunk = int(rng.integers(1, 2 * trace_length(nest) + 2))
            amap = AddressMap(nest)
            ref = [
                (amap.address(a), a.array, a.is_write)
                for a in generate_trace(nest, tile=tile, order=order)
            ]
            batches = list(
                generate_trace_batched(nest, tile=tile, order=order, chunk=chunk)
            )
            addresses = np.concatenate([b.addresses for b in batches])
            array_ids = np.concatenate([b.array_ids for b in batches])
            is_write = np.concatenate([b.is_write for b in batches])
            assert addresses.tolist() == [r[0] for r in ref]
            assert array_ids.tolist() == [r[1] for r in ref]
            assert is_write.tolist() == [r[2] for r in ref]
            # chunks never split an iteration point
            assert all(len(b.addresses) % nest.num_arrays == 0 for b in batches)

    def test_uniform_and_ragged_grids_agree(self):
        nest = matmul(6, 6, 6)
        amap = AddressMap(nest)
        for blocks in [(2, 3, 6), (4, 5, 6)]:  # divides vs ragged
            tile = TileShape(nest=nest, blocks=blocks)
            ref = [amap.address(a) for a in generate_trace(nest, tile=tile)]
            got = np.concatenate(
                [b.addresses for b in generate_trace_batched(nest, tile=tile, chunk=50)]
            )
            assert got.tolist() == ref

    def test_guard_is_ten_times_the_old_limit(self):
        assert MAX_TRACE_ACCESSES == 80_000_000
        big = matmul(300, 300, 300)  # 81M accesses: just over the new guard
        with pytest.raises(ValueError):
            next(generate_trace(big))
        with pytest.raises(ValueError):
            next(generate_trace_batched(big))
        # 27M accesses was rejected by the old 8M guard; the batched path
        # accepts it (pull a single chunk, not the whole trace).
        mid = matmul(300, 300, 100)
        assert trace_length(mid) > 8_000_000
        batch = next(generate_trace_batched(mid, chunk=1024))
        assert len(batch.addresses) > 0

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            next(generate_trace_batched(matmul(2, 2, 2), chunk=0))


@pytest.mark.parametrize("use_native", ENGINES, ids=lambda v: "native" if v else "python")
class TestBatchLRUCrossCheck:
    def test_randomized_all_capacities(self, use_native):
        rng = np.random.default_rng(11)
        for _ in range(15):
            n = int(rng.integers(1, 300))
            universe = int(rng.integers(1, 20))
            lines = rng.integers(0, universe, n).astype(np.int64)
            writes = rng.random(n) < 0.4
            for capacity in range(1, universe + 3):
                want = reference_stats(lines, writes, capacity)
                batch = BatchLRU(capacity, universe, use_native=use_native)
                misses = 0
                cuts = np.sort(rng.integers(0, n + 1, 2))
                for part in np.split(np.arange(n), cuts):
                    if len(part):
                        misses += int(batch.process(lines[part], writes[part]).sum())
                batch.flush()
                s = batch.stats
                assert (s.accesses, s.hits, s.misses, s.writebacks) == want
                assert misses == s.misses  # miss mask consistent with totals

    def test_nest_traces_all_capacities(self, use_native):
        rng = np.random.default_rng(13)
        for nest in [matmul(4, 3, 5), matvec(6, 4), nbody(5, 4)]:
            chunks = list(generate_trace_batched(nest, chunk=64))
            lines = np.concatenate([c.addresses for c in chunks])
            writes = np.concatenate([c.is_write for c in chunks])
            universe = int(lines.max()) + 1
            for capacity in rng.integers(1, universe + 2, size=6).tolist():
                want = reference_stats(lines, writes, capacity)
                batch = BatchLRU(capacity, universe, use_native=use_native)
                batch.process(lines, writes)
                batch.flush()
                s = batch.stats
                assert (s.accesses, s.hits, s.misses, s.writebacks) == want


@pytest.mark.parametrize("use_native", ENGINES, ids=lambda v: "native" if v else "python")
class TestMissCurveCrossCheck:
    def test_randomized_all_capacities(self, use_native):
        rng = np.random.default_rng(17)
        for _ in range(15):
            n = int(rng.integers(1, 300))
            universe = int(rng.integers(1, 20))
            lines = rng.integers(0, universe, n).astype(np.int64)
            writes = rng.random(n) < 0.4
            curve = miss_curve(lines, writes, use_native=use_native)
            for capacity in range(1, universe + 3):
                want = reference_stats(lines, writes, capacity)
                s = curve.stats_at(capacity)
                assert (s.accesses, s.hits, s.misses, s.writebacks) == want

    def test_sweep_matches_point_queries(self, use_native):
        rng = np.random.default_rng(19)
        lines = rng.integers(0, 12, 200).astype(np.int64)
        writes = rng.random(200) < 0.3
        curve = miss_curve(lines, writes, use_native=use_native)
        caps, misses, writebacks = curve.sweep()
        assert caps[0] == 1 and caps[-1] == curve.distinct_lines + 1
        for c, m, w in zip(caps.tolist(), misses.tolist(), writebacks.tolist()):
            assert m == curve.misses_at(c)
            assert w == curve.writebacks_at(c)
        # LRU inclusion: the curve is monotone non-increasing
        assert (np.diff(misses) <= 0).all()
        assert misses[-1] == curve.cold_misses

    def test_nest_curve_matches_trace_simulation(self, use_native):
        nest = matmul(6, 6, 6)
        sol = solve_tiling(nest, 48, budget="aggregate")
        curve = nest_miss_curve(nest, tile=sol.tile, use_native=use_native)
        for capacity in (1, 7, 48, 200):
            rep = run_trace_simulation(
                nest, MachineModel(cache_words=capacity), tile=sol.tile
            )
            assert curve.misses_at(capacity) == rep.meta["misses"]
            assert curve.writebacks_at(capacity) == rep.meta["writebacks"]
            assert curve.misses_at(capacity) + curve.writebacks_at(capacity) == rep.total_words


def _comparable(report):
    meta = {k: v for k, v in report.meta.items() if k != "engine"}
    return report.nest_name, report.per_array, report.source, meta


class TestTraceSimulationEngines:
    def test_batched_equals_reference_reports(self):
        rng = np.random.default_rng(23)
        for _ in range(8):
            nest = random_nest(rng)
            machine = MachineModel(
                cache_words=int(rng.integers(2, 40)),
                line_words=int(rng.integers(1, 3)),
            )
            tile = TileShape(
                nest=nest, blocks=tuple(int(rng.integers(1, L + 1)) for L in nest.bounds)
            )
            for policy in ("lru", "belady", "direct"):
                fast = run_trace_simulation(nest, machine, tile=tile, policy=policy)
                oracle = run_trace_simulation(
                    nest, machine, tile=tile, policy=policy, engine="reference"
                )
                assert _comparable(fast) == _comparable(oracle), policy

    def test_writeback_apportionment_conserves_total(self):
        # Two output arrays: per-array stores must sum to the aggregate
        # write-back count exactly (largest-remainder apportionment).
        nest = LoopNest(
            name="twoout",
            loops=("i", "j"),
            bounds=(5, 7),
            arrays=(
                ArrayRef(name="U", support=(0,), is_output=True),
                ArrayRef(name="V", support=(1,), is_output=True),
                ArrayRef(name="W", support=(0, 1)),
            ),
        )
        machine = MachineModel(cache_words=6)
        for engine in ("batched", "reference"):
            rep = run_trace_simulation(nest, machine, engine=engine)
            assert rep.stores == rep.meta["writebacks"] * machine.line_words
        fast = run_trace_simulation(nest, machine)
        oracle = run_trace_simulation(nest, machine, engine="reference")
        assert _comparable(fast) == _comparable(oracle)

    def test_bad_engine(self):
        with pytest.raises(ValueError):
            run_trace_simulation(
                matmul(2, 2, 2), MachineModel(cache_words=8), engine="warp"
            )

    @pytest.mark.skipif(not native_available(), reason="no native kernel")
    def test_native_and_python_lru_agree(self):
        nest = nbody(8, 9)
        machine = MachineModel(cache_words=24)
        fast = run_trace_simulation(nest, machine, use_native=True)
        slow = run_trace_simulation(nest, machine, use_native=False)
        assert _comparable(fast) == _comparable(slow)
