"""Tests for the §7 multiprocessor extension."""

from fractions import Fraction as F
from math import prod

import pytest

from repro.library.problems import matmul, matvec, nbody
from repro.parallel.distributed import (
    distributed_lower_bound,
    one_dimensional_split,
    simulate_grid,
)
from repro.parallel.grid import factor_grids, grid_cost, lp_grid, optimal_grid


class TestFactorGrids:
    def test_count_for_p8_d3(self):
        grids = list(factor_grids(8, 3))
        assert all(prod(g) == 8 for g in grids)
        # Ordered factorizations of 2^3 into 3 factors: C(3+2,2) = 10.
        assert len(grids) == 10

    def test_p1(self):
        assert list(factor_grids(1, 2)) == [(1, 1)]

    def test_d1(self):
        assert list(factor_grids(6, 1)) == [(6,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(factor_grids(0, 2))


class TestGridCost:
    def test_matmul_cube_grid(self):
        nest = matmul(512, 512, 512)
        cost = grid_cost(nest, (4, 4, 4))
        assert cost.block == (128, 128, 128)
        assert cost.footprint_words == 3 * 128 * 128
        # owned share = 512^2/64 = 4096 per array.
        assert cost.comm_words == 3 * (128 * 128 - 4096)

    def test_validation(self):
        nest = matmul(8, 8, 8)
        with pytest.raises(ValueError):
            grid_cost(nest, (2, 2))
        with pytest.raises(ValueError):
            grid_cost(nest, (0, 2, 2))


class TestOptimalGrid:
    def test_matmul_prefers_cubic(self):
        # The classic 3D result: balanced cube grid minimises traffic.
        best = optimal_grid(matmul(512, 512, 512), 64)
        assert best.grid == (4, 4, 4)

    def test_matvec_splits_both_dims(self):
        best = optimal_grid(matvec(2**10, 2**10), 16)
        assert prod(best.grid) == 16
        # A dominates traffic; splitting evenly across rows/cols wins
        # over any 1-D split.
        one_d = grid_cost(matvec(2**10, 2**10), (16, 1))
        assert best.comm_words <= one_d.comm_words

    def test_skewed_bounds_skew_grid(self):
        # x1 much longer than x3: optimal grid puts more processors on x1.
        best = optimal_grid(matmul(2**12, 2**6, 2**6), 16)
        assert best.grid[0] >= best.grid[1]
        assert best.grid[0] >= best.grid[2]

    def test_footprint_objective(self):
        best = optimal_grid(matmul(256, 256, 256), 8, objective="footprint")
        assert best.grid == (2, 2, 2)
        with pytest.raises(ValueError):
            optimal_grid(matmul(8, 8, 8), 4, objective="latency")


class TestLPGrid:
    def test_matches_exhaustive_for_cube(self):
        nest = matmul(512, 512, 512)
        mu, t = lp_grid(nest, 64)
        # mu = (2, 2, 2) in log2 -> grid 4x4x4; makespan = log2(128^2) = 14.
        assert mu == (F(2), F(2), F(2))
        assert t == 14

    def test_infeasible_when_p_too_large(self):
        with pytest.raises(RuntimeError):
            lp_grid(matmul(2, 2, 2), 1024)


class TestDistributed:
    def test_lower_bound_decreases_with_p(self):
        nest = matmul(512, 512, 512)
        b1 = distributed_lower_bound(nest, 1, 2**12)
        b64 = distributed_lower_bound(nest, 64, 2**12)
        assert b64 < b1

    def test_lower_bound_validation(self):
        with pytest.raises(ValueError):
            distributed_lower_bound(matmul(8, 8, 8), 0, 64)
        with pytest.raises(ValueError):
            distributed_lower_bound(matmul(8, 8, 8), 4, 1)

    def test_simulate_grid_ratio_small(self):
        rep = simulate_grid(matmul(512, 512, 512), 64, 2**12)
        assert rep.ratio < 4.0
        assert "words/proc" in rep.summary()

    def test_one_d_split_worse_than_optimal(self):
        opt = simulate_grid(matmul(512, 512, 512), 64, 2**12)
        bad = one_dimensional_split(matmul(512, 512, 512), 64, 2**12)
        assert bad.words_per_processor > 2 * opt.words_per_processor

    def test_one_d_split_validation(self):
        with pytest.raises(ValueError):
            one_dimensional_split(matmul(8, 8, 8), 4, 64, loop=5)

    def test_nbody_grid(self):
        rep = simulate_grid(nbody(2**12, 2**12), 16, 2**10)
        assert prod(rep.grid) == 16
        assert rep.words_per_processor >= 0
