"""The plan cache must be exact: every warm answer equals a cold solve.

The planner's guard (primal feasibility + strong duality against the
cached piecewise value function) is what lets it skip the simplex; the
tests here pin that guarantee across the catalog, budgets, cache sizes,
disguised structures, persistence round-trips, eviction, the batch
engine, and the batch CLI.
"""

import json
import random
from fractions import Fraction

import pytest

import repro
from repro.cli import main
from repro.core.bounds import communication_lower_bound
from repro.core.tiling import solve_tiling
from repro.core.verify import check_tile
from repro.library.problems import catalog, matmul, mttkrp, nbody
from repro.plan import Planner, PlanRequest, TilePlan, plan_batch, sweep_requests

CATALOG = catalog()

# Structures cheap enough for exhaustive parity runs (tucker_core's
# multiparametric solve costs seconds and adds no new code path).
FAST_PROBLEMS = sorted(set(CATALOG) - {"tucker_core", "attention_scores"})


def assert_plan_matches_solver(plan: TilePlan, nest, cache_words, budget):
    sol = solve_tiling(nest, cache_words, budget=budget)
    assert plan.exponent == sol.exponent
    assert sum(plan.lambdas, Fraction(0)) == plan.exponent
    assert plan.tile.is_feasible(cache_words, budget)
    # The plan's lambdas must be LP-feasible w.r.t. the same effective
    # cache solve_tiling uses (vertex choice may differ; value may not).
    effective = (
        cache_words if budget == "per-array" else max(1, cache_words // nest.num_arrays)
    )
    if effective >= 2:
        betas = nest.betas(effective)
        for lam, beta in zip(plan.lambdas, betas):
            assert 0 <= lam <= beta
        for arr in nest.arrays:
            if arr.support:
                assert sum((plan.lambdas[i] for i in arr.support), Fraction(0)) <= 1


class TestPlannerParity:
    @pytest.mark.parametrize("name", FAST_PROBLEMS, ids=str)
    def test_matches_solve_tiling_everywhere(self, name):
        nest = CATALOG[name]
        planner = Planner()
        for cache_words in (16, 1024, 2**16):
            for budget in ("per-array", "aggregate"):
                if budget == "aggregate" and cache_words < nest.num_arrays:
                    continue
                plan = planner.plan(nest, cache_words, budget=budget)
                assert_plan_matches_solver(plan, nest, cache_words, budget)

    @pytest.mark.parametrize("name", ["matmul", "nbody", "mttkrp"], ids=str)
    def test_lower_bound_matches_direct_computation(self, name):
        nest = CATALOG[name]
        planner = Planner()
        for cache_words in (64, 4096):
            for budget in ("per-array", "aggregate"):
                plan = planner.plan(nest, cache_words, budget=budget)
                direct = communication_lower_bound(nest, cache_words)
                assert plan.lower_bound.k_hat == direct.k_hat
                assert plan.lower_bound.value == direct.value
                assert plan.lower_bound.hong_kung_words == direct.hong_kung_words

    def test_warm_answers_stay_exact_across_a_sweep(self):
        """Many bounds against one structure: the map-reuse hot path."""
        rng = random.Random("sweep")
        planner = Planner()
        for _ in range(60):
            nest = matmul(
                rng.choice([3, 100, 512, 4096]),
                rng.choice([7, 64, 2048]),
                rng.choice([2, 16, 999]),
            )
            plan = planner.plan(nest, 2**14)
            assert_plan_matches_solver(plan, nest, 2**14, "per-array")
        assert planner.stats.structure_solves == 1
        assert planner.stats.primal_map_hits > 40

    def test_disguised_structures_share_one_solve(self):
        planner = Planner()
        rng = random.Random("disguise")
        base = CATALOG["matmul"]
        plans = []
        for _ in range(12):
            order = list(range(base.depth))
            rng.shuffle(order)
            nest = base.permuted(order).with_bounds(
                [rng.choice([64, 512, 4096]) for _ in range(base.depth)]
            )
            plans.append(planner.plan(nest, 2**16))
        assert planner.stats.structure_solves == 1
        assert planner.stats.structure_hits == 11
        for plan in plans:
            assert_plan_matches_solver(plan, plan.nest, 2**16, "per-array")

    def test_tiling_solution_adapter_passes_verifier(self):
        planner = Planner()
        nest = CATALOG["mttkrp"]
        sol = planner.plan(nest, 2**12).tiling_solution()
        check = check_tile(sol.nest, sol.tile, 2**12, sol.exponent)
        assert check.ok

    def test_validation_errors(self):
        planner = Planner()
        with pytest.raises(ValueError):
            planner.plan(CATALOG["matmul"], 1)
        with pytest.raises(ValueError):
            planner.plan(CATALOG["matmul"], 4096, budget="bogus")
        with pytest.raises(ValueError):
            planner.plan(CATALOG["matmul"], 2, budget="aggregate")
        with pytest.raises(ValueError):
            Planner(capacity=0)

    def test_degenerate_aggregate_cache_gives_unit_tile(self):
        nest = CATALOG["matmul"]
        plan = Planner().plan(nest, 4, budget="aggregate")
        assert plan.tile.blocks == (1, 1, 1)
        assert plan.exponent == 0
        assert plan.lower_bound is not None

    def test_astronomical_bounds_bypass_the_piece_cache(self):
        # beta > 64 lies outside the pruned piece set's certified domain;
        # both the tile path and the aggregate-budget lower-bound path
        # must fall back to the exact LP and still match the direct solve.
        nest = matmul(3**65, 4, 4)
        planner = Planner()
        for budget in ("per-array", "aggregate"):
            plan = planner.plan(nest, 3, budget=budget)
            assert plan.exponent == solve_tiling(nest, 3, budget=budget).exponent
            direct = communication_lower_bound(nest, 3)
            assert plan.lower_bound.k_hat == direct.k_hat


class TestCacheMechanics:
    def test_lru_eviction_order(self):
        planner = Planner(capacity=2)
        planner.plan(matmul(8, 8, 8), 64)
        planner.plan(nbody(8, 8), 64)
        planner.plan(matmul(16, 16, 16), 64)  # refreshes matmul
        planner.plan(mttkrp(8, 8, 8, 8), 64)  # evicts nbody
        keys = planner.cached_keys()
        assert len(keys) == 2
        assert planner.stats.evictions == 1
        assert repro.canonical_key(CATALOG["nbody"]) not in keys
        assert repro.canonical_key(CATALOG["matmul"]) in keys

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "plans.json"
        first = Planner(cache_path=path)
        plan_a = first.plan(CATALOG["matmul"], 2**16)
        first.plan(CATALOG["nbody"], 2**12)
        first.save()

        second = Planner(cache_path=path)
        assert sorted(second.cached_keys()) == sorted(first.cached_keys())
        plan_b = second.plan(CATALOG["matmul"], 2**16)
        # Loaded structures serve without any multiparametric re-solve.
        assert second.stats.structure_solves == 0
        assert plan_b.exponent == plan_a.exponent
        assert plan_b.tile.blocks == plan_a.tile.blocks
        assert plan_b.cache_hit

    def test_persisted_pieces_are_exact_fractions(self, tmp_path):
        path = tmp_path / "plans.json"
        planner = Planner(cache_path=path)
        planner.plan(CATALOG["matmul"], 2**16)
        planner.save()
        blob = json.loads(path.read_text())
        entry = blob["entries"][repro.canonical_key(CATALOG["matmul"])]
        constants = {piece["c"] for piece in entry["pieces"]}
        assert "3/2" in constants  # the classical sqrt(M) piece, exactly

    def test_unsupported_cache_version_quarantined(self, tmp_path):
        # An unreadable cache must never take the planner down: the bad
        # file is moved aside as <name>.corrupt and planning starts from
        # an empty cache.
        path = tmp_path / "plans.json"
        original = json.dumps({"version": 999, "entries": {}})
        path.write_text(original)
        planner = Planner(cache_path=path)
        assert planner.cached_keys() == []
        assert not path.exists()
        corrupt = tmp_path / "plans.json.corrupt"
        assert corrupt.read_text() == original
        # And the planner still works end to end afterwards.
        plan = planner.plan(CATALOG["matmul"], 2**12)
        assert plan.exponent > 0

    def test_truncated_cache_quarantined(self, tmp_path):
        # Simulates a crash mid-write by a non-atomic writer (or disk
        # corruption): half a JSON document on disk.
        path = tmp_path / "plans.json"
        good = Planner(cache_path=path)
        good.plan(CATALOG["matmul"], 2**12)
        good.save()
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        planner = Planner(cache_path=path)
        assert planner.cached_keys() == []
        assert (tmp_path / "plans.json.corrupt").exists()
        assert not path.exists()

    def test_empty_cache_file_quarantined(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("")
        planner = Planner(cache_path=path)
        assert planner.cached_keys() == []
        assert (tmp_path / "plans.json.corrupt").exists()

    def test_checksum_mismatch_quarantined(self, tmp_path):
        # A bit-flipped entry is caught by the embedded sha256 even when
        # the JSON itself still parses.
        path = tmp_path / "plans.json"
        good = Planner(cache_path=path)
        good.plan(CATALOG["matmul"], 2**12)
        good.save()
        blob = json.loads(path.read_text())
        key = next(iter(blob["entries"]))
        blob["entries"][key]["pieces"][0]["c"] = "999999/7"
        path.write_text(json.dumps(blob))
        planner = Planner(cache_path=path)
        assert planner.cached_keys() == []
        assert (tmp_path / "plans.json.corrupt").exists()

    def test_quarantine_then_save_round_trips(self, tmp_path):
        # After quarantining, the same path is reusable for a fresh
        # save/load cycle.
        path = tmp_path / "plans.json"
        path.write_text("{not json")
        planner = Planner(cache_path=path)
        planner.plan(CATALOG["nbody"], 2**12)
        planner.save()
        reloaded = Planner(cache_path=path)
        assert reloaded.cached_keys() == planner.cached_keys()
        assert (tmp_path / "plans.json.corrupt").exists()

    def test_save_is_atomic_no_tmp_droppings(self, tmp_path):
        # Crash-safety contract: the write goes to a mkstemp sibling and
        # lands via os.replace; after a successful save no temp files
        # remain and the target parses as complete JSON.
        path = tmp_path / "plans.json"
        planner = Planner(cache_path=path)
        planner.plan(CATALOG["matmul"], 2**12)
        planner.save()
        planner.plan(CATALOG["nbody"], 2**12)
        planner.save()  # overwrite: still atomic, still complete
        assert [p.name for p in tmp_path.iterdir()] == ["plans.json"]
        blob = json.loads(path.read_text())
        assert len(blob["entries"]) == 2

    def test_concurrent_saves_never_interleave(self, tmp_path):
        # Many threads hammering save() on one shared planner (the
        # concurrent-Session scenario): every observable file state must
        # be a complete, parseable snapshot with all structures present.
        import threading

        path = tmp_path / "plans.json"
        planner = Planner(cache_path=path)
        for nest in (CATALOG["matmul"], CATALOG["nbody"], CATALOG["matvec"]):
            planner.plan(nest, 2**12)
        expected = sorted(planner.cached_keys())
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    planner.save()
                    blob = json.loads(path.read_text())
                    assert blob["version"] == 1
                    assert sorted(blob["entries"]) == expected
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert Planner(cache_path=path).stats.structure_solves == 0


class TestPlanBatch:
    def test_ordered_results_and_tuple_requests(self):
        reqs = [
            (matmul(64, 64, 64), 4096),
            PlanRequest(nest=CATALOG["nbody"], cache_words=1024),
            (mttkrp(32, 32, 32, 8), 4096, "aggregate"),
        ]
        plans = plan_batch(reqs, max_workers=0)
        assert [p.nest.name for p in plans] == ["matmul", "nbody", "mttkrp"]
        for plan in plans:
            assert_plan_matches_solver(plan, plan.nest, plan.cache_words, plan.budget)

    def test_parallel_warming_matches_serial(self):
        reqs = [
            (matmul(64, 64, 64), 4096),
            (CATALOG["nbody"], 1024),
            (CATALOG["matvec"], 4096),
            (mttkrp(32, 32, 32, 8), 4096),
        ]
        serial_planner = Planner()
        serial = plan_batch(reqs, planner=serial_planner, max_workers=0)
        parallel_planner = Planner()
        parallel = plan_batch(reqs, planner=parallel_planner, max_workers=2)
        assert serial_planner.stats.structure_solves == 4
        for left, right in zip(serial, parallel):
            assert left.exponent == right.exponent
            assert left.tile.blocks == right.tile.blocks
            assert left.canonical_key == right.canonical_key

    def test_warm_batch_never_resolves_structures(self):
        planner = Planner()
        reqs = [(matmul(2**i, 64, 64), 4096) for i in range(4, 10)]
        plan_batch(reqs, planner=planner, max_workers=0)
        solves = planner.stats.structure_solves
        plan_batch(reqs, planner=planner)
        assert planner.stats.structure_solves == solves == 1

    def test_empty_batch(self):
        assert plan_batch([], max_workers=0) == []

    def test_bad_request_tuples_rejected(self):
        with pytest.raises(TypeError):
            plan_batch([CATALOG["matmul"]], max_workers=0)
        with pytest.raises(TypeError):
            plan_batch([(CATALOG["matmul"], 64, "per-array", "extra")], max_workers=0)

    def test_sweep_requests_ordering(self):
        reqs = sweep_requests(matmul, [[64, 128], [64], [16]], [256, 1024])
        assert len(reqs) == 4
        assert [r.nest.bounds[0] for r in reqs] == [64, 64, 128, 128]
        assert [r.cache_words for r in reqs] == [256, 1024, 256, 1024]


class TestBatchCLI:
    def test_batch_mode_emits_ordered_jsonl(self, tmp_path, capsys):
        requests = [
            {"problem": "matmul", "sizes": [256, 256, 16], "cache_words": 4096},
            {"problem": "syrk", "sizes": [256, 32], "cache_words": 4096},
            {
                "statement": "F[i] += P[i] * Q[j]",
                "bounds": {"i": 512, "j": 512},
                "cache_words": 256,
                "name": "pairwise",
            },
        ]
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(requests))
        rc = main(["--batch", str(path), "--workers", "0"])
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        # Each line is a schema-v1 Result envelope around the plan payload.
        assert all(entry["schema_version"] == 1 for entry in lines)
        payloads = [entry["payload"] for entry in lines]
        assert [p["name"] for p in payloads] == ["matmul", "syrk", "pairwise"]
        # matmul and syrk share one canonical structure.
        assert payloads[0]["canonical_key"] == payloads[1]["canonical_key"]
        sol = solve_tiling(matmul(256, 256, 16), 4096)
        assert Fraction(payloads[0]["k_hat"]) == sol.exponent

    def test_batch_mode_with_plan_cache(self, tmp_path, capsys):
        requests = [{"problem": "matvec", "cache_words": 1024}]
        req_path = tmp_path / "requests.json"
        req_path.write_text(json.dumps({"requests": requests}))
        cache_path = tmp_path / "plans.json"
        assert main(["--batch", str(req_path), "--workers", "0",
                     "--plan-cache", str(cache_path)]) == 0
        capsys.readouterr()
        assert cache_path.exists()
        # Second run loads the cache: the query is a structure hit.
        assert main(["--batch", str(req_path), "--workers", "0",
                     "--plan-cache", str(cache_path)]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["meta"]["cache_hit"] is True

    def test_sweep_mode_problem(self, capsys):
        rc = main([
            "--problem", "matmul", "--sweep", "--workers", "0",
            "--sizes", "64:128,64,16", "-M", "256:1024",
        ])
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert len(lines) == 4
        assert [(e["payload"]["bounds"][0], e["payload"]["cache_words"]) for e in lines] == [
            (64, 256), (64, 1024), (128, 256), (128, 1024),
        ]

    def test_sweep_mode_statement(self, capsys):
        rc = main([
            "F[i] += P[i] * Q[j]", "--sweep", "--workers", "0",
            "--bounds", "i=64:128,j=32", "-M", "64",
        ])
        assert rc == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [entry["payload"]["bounds"] for entry in lines] == [[64, 32], [128, 32]]

    def test_batch_conflicts_with_problem(self, tmp_path):
        path = tmp_path / "requests.json"
        path.write_text("[]")
        with pytest.raises(SystemExit):
            main(["--problem", "matmul", "--batch", str(path)])

    def test_bad_batch_file(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"problem": "matmul"}]))  # no cache_words
        assert main(["--batch", str(path)]) == 2
        assert "cache_words" in capsys.readouterr().err
        path.write_text("{not json")
        assert main(["--batch", str(path)]) == 2

    def test_missing_batch_file(self, capsys):
        assert main(["--batch", "/nonexistent/requests.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_bad_sizes_arity_is_a_clean_error(self, capsys):
        rc = main(["--problem", "matmul", "--sweep", "--sizes", "64", "-M", "256"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_batch_bad_cache_words_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"problem": "matmul", "cache_words": "abc"}]))
        assert main(["--batch", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_invalid_cache_size_is_a_clean_error(self, capsys):
        rc = main(["--problem", "matvec", "--sweep", "--sizes", "64,64", "-M", "0:256"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
