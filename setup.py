"""Legacy shim so ``pip install -e .`` works without the ``wheel`` package.

All metadata lives in pyproject.toml (PEP 621); this file only gives pip
a ``setup.py develop`` fallback for offline environments.
"""

from setuptools import setup

setup()
