#!/usr/bin/env python
"""Pointwise-convolution tilings for a MobileNet-style network (§6.2).

The paper's machine-learning motivation: CNN pointwise (1x1) layers
have small channel counts, so classical communication bounds are loose
and classical tilings are infeasible.  This example walks the pointwise
layers of a MobileNet-v1-shaped network, derives the communication-
optimal tiling for each through the ``repro.api.Session`` façade (all
eight layers share one canonical structure, so the whole network costs
a single multiparametric solve), verifies each plan against the §6.5
contraction closed form, and compares simulated traffic against the
clamped classical tiling a non-bound-aware compiler would emit.

Run:  python examples/conv_mobilenet.py
"""

from math import floor

import repro
from repro.core.closed_forms import contraction_tile_exponent
from repro.library.problems import pointwise_conv

M = 2**15  # 256 KiB of float64 words
BATCH = 8

# (C_in, C_out, H=W) for MobileNet-v1's pointwise stages (stride folded).
LAYERS = [
    (32, 64, 112),
    (64, 128, 56),
    (128, 128, 56),
    (128, 256, 28),
    (256, 256, 28),
    (256, 512, 14),
    (512, 512, 14),
    (512, 1024, 7),
]

machine = repro.MachineModel(cache_words=M)

# One Session.batch call replaces the per-layer solver loop: the
# session's planner canonicalizes each layer, sees one shared structure,
# runs the multiparametric LP once, and serves all layers from the cache.
session = repro.api.Session()
results = session.batch(
    [(pointwise_conv(BATCH, cin, cout, hw, hw), M, "aggregate") for cin, cout, hw in LAYERS]
)
plans = [result.detail for result in results]
assert session.stats.structure_solves == 1  # eight layers, one LP structure

print(f"MobileNet pointwise layers, batch={BATCH}, M={M} words")
print(f"plan cache: {session.stats.structure_solves} structure solve for {len(LAYERS)} layers "
      f"(key {plans[0].canonical_key})")
header = (f"{'layer':>14} {'k_hat':>8} {'tile (b,c,k,w,h)':>22} "
          f"{'LP words':>12} {'classic words':>14} {'saving':>7}")
print(header)
print("-" * len(header))

total_lp = total_classic = 0
for (cin, cout, hw), sol in zip(LAYERS, plans):
    nest = sol.nest

    # §6.2: the contraction closed form must agree with the LP.
    closed = contraction_tile_exponent(
        left=(BATCH, hw, hw), shared=(cin,), right=(cout,),
        M=max(1, M // nest.num_arrays),
    )
    assert closed == sol.exponent, (closed, sol.exponent)

    lp_traffic = repro.best_order_traffic(nest, sol.tile, machine=machine)

    # What a bound-unaware compiler does: equal cube-root shares, clamped.
    side = max(1, floor((M // nest.num_arrays) ** (1 / 3)))
    clamped = repro.TileShape(
        nest=nest, blocks=tuple(min(side, L) for L in nest.bounds)
    )
    classic_traffic = repro.best_order_traffic(nest, clamped, machine=machine)

    total_lp += lp_traffic.total_words
    total_classic += classic_traffic.total_words
    saving = classic_traffic.total_words / lp_traffic.total_words
    # Exact rational exponents from non-power-of-two bounds are unwieldy
    # to read; print those as decimals.
    k_txt = (
        str(sol.exponent)
        if sol.exponent.denominator <= 64
        else f"{float(sol.exponent):.4f}"
    )
    print(
        f"{cin:>5}->{cout:<4}@{hw:<3} {k_txt:>8} "
        f"{str(sol.tile.blocks):>22} {lp_traffic.total_words:>12,} "
        f"{classic_traffic.total_words:>14,} {saving:>6.2f}x"
    )

print("-" * len(header))
print(
    f"{'network total':>14} {'':>8} {'':>22} {total_lp:>12,} {total_classic:>14,} "
    f"{total_classic / total_lp:>6.2f}x"
)
print("\nEvery layer's tiling is certified optimal (Theorem 3) for its shape;")
print("the network-level saving is the paper's 'arbitrary bounds matter' story.")
