#!/usr/bin/env python
"""A compiler-pass style blocking report (§7's 'immediate application').

The paper positions the technique as a compiler optimisation: given any
projective loop nest, automatically emit (a) the communication lower
bound, (b) a provably optimal rectangular blocking, (c) the family of
equally-optimal alternatives the code generator may pick from (to align
with vector widths or cache lines), and (d) the closed-form bound as a
function of the loop bounds, for *all* shapes at once.

This example runs that report over a mixed batch of kernels a compiler
might meet — served through ``repro.api.Session.batch``, the same
façade behind ``repro-tile --batch`` and the ``/v1/batch`` endpoint:
one canonical-structure solve per distinct projection pattern (gemm
and skinny-gemm share one), every answer certified exactly by the
planner's strong-duality guard.

Run:  python examples/compiler_blocking_report.py
"""

from fractions import Fraction

import repro

M = 2**14

BATCH = [
    ("gemm", "C[i,k] += A[i,j] * B[j,k]", {"i": 2048, "j": 2048, "k": 2048}),
    ("skinny-gemm", "C[i,k] += A[i,j] * B[j,k]", {"i": 4096, "j": 4096, "k": 12}),
    ("gemv", "y[i] += A[i,j] * x[j]", {"i": 4096, "j": 4096}),
    ("capsule-contraction", "O[b,i,u] += T[b,i,j] * P[b,j,u]",
     {"b": 64, "i": 16, "j": 16, "u": 32}),
    ("pairwise", "F[i] += P[i] * Q[j]", {"i": 8192, "j": 8192}),
    ("mttkrp", "A[i,r] += T[i,j,k] * B[j,r] * C2[k,r]", {"i": 256, "j": 256, "k": 256, "r": 16}),
]


def main() -> None:
    nests = [
        repro.parse_nest(statement, bounds, name=name) for name, statement, bounds in BATCH
    ]

    # The whole batch goes through the service façade: canonicalize,
    # solve each distinct structure once (in parallel worker processes —
    # which is why this lives under a __main__ guard: spawn-start
    # platforms re-import this module in each worker), then substitute
    # each kernel's bounds into the cached parametric answer — the
    # rewired version of the old per-kernel analyze() loop.
    session = repro.api.Session()
    results = session.batch([(nest, M) for nest in nests])
    plans = [result.detail for result in results]

    for (name, statement, bounds), nest, plan in zip(BATCH, nests, plans):
        family = repro.optimal_tile_family(nest, M)
        pvf = repro.parametric_tile_exponent(nest)

        print("=" * 72)
        print(f"kernel     : {name}")
        print(f"statement  : {statement}")
        print(f"bounds     : {bounds}   cache: {M} words")
        print(f"structure  : {plan.canonical_key} "
              f"({'cache hit' if plan.cache_hit else 'cold solve'})")
        print(f"lower bound: {plan.lower_bound.value:,.0f} words "
              f"(k_hat = {plan.lower_bound.k_hat})")
        print(f"blocking   : {plan.tile.blocks} "
              f"(exponent {plan.exponent}, certified by strong duality)")
        if family.is_unique:
            print("freedom    : unique optimal shape")
        else:
            verts = ", ".join(
                "(" + ", ".join(str(v) for v in vertex) + ")" for vertex in family.vertices
            )
            print(f"freedom    : {len(family.vertices)} optimal vertices — any convex "
                  f"combination works: {verts}")
            # Example: hand the code generator the midpoint.
            n = len(family.vertices)
            mid = family.tile_at([Fraction(1, n)] * n)
            print(f"             e.g. midpoint tile {mid.blocks}")
        print(f"closed form: {pvf.render()}")

    print("=" * 72)
    stats = session.stats
    print(f"plan cache : {stats.queries} queries served from "
          f"{len(session.planner.cached_keys())} canonical structures "
          f"({stats.structure_hits} hits); every blocking certified by an exact")
    print("primal/dual pair (Theorem 3); no per-kernel hand analysis was involved.")


if __name__ == "__main__":
    main()
