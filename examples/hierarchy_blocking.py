#!/usr/bin/env python
"""Multi-level blocking: one nest, every cache boundary optimal at once.

The paper's two-level analysis applies at each boundary of a real
memory hierarchy.  This example derives *nested* tilings for an
L1/L2/L3-shaped hierarchy, audits the whole bundle with the independent
verifier, generates the blocked source code for the innermost level,
and validates the nested schedule's traffic at every boundary with the
word-accurate LRU simulator.

Run:  python examples/hierarchy_blocking.py
"""

import numpy as np

import repro
from repro.core.hierarchy import MemoryHierarchy, solve_hierarchical_tiling
from repro.kernels.codegen import generate_tiled_source, run_generated
from repro.kernels.naive import allocate_arrays, execute_reference
from repro.library.problems import matmul
from repro.simulate.multilevel import (
    simulate_hierarchical_tiling_trace,
    simulate_hierarchy_trace,
)

hierarchy = MemoryHierarchy(capacities=(2**9, 2**13, 2**17), name="L1/L2/L3")
nest = matmul(2048, 2048, 16)  # the paper's skinny regime, on 3 levels

print("=== Nested communication-optimal tilings ===")
ht = solve_hierarchical_tiling(nest, hierarchy, budget="aggregate")
print(ht.summary())
for inner, outer in zip(ht.levels, ht.levels[1:]):
    assert all(a <= b for a, b in zip(inner.tile.blocks, outer.tile.blocks))
print("nesting invariant holds: every level's tile contains the previous one")

print("\n=== Independent audit of the two-level analysis at each capacity ===")
for capacity in hierarchy.capacities:
    analysis = repro.analyze(nest, cache_words=capacity)
    problems = repro.verify_analysis(analysis)
    print(f"  M={capacity:>7}: k_hat={analysis.lower_bound.k_hat}  "
          f"audit: {'clean' if not problems else problems}")
    assert not problems

print("\n=== Generated innermost-level kernel (excerpt) ===")
src = generate_tiled_source(nest, ht.levels[0].tile, func_name="l1_blocked_matmul")
print("\n".join(src.splitlines()[:6]) + "\n    ...")

small = matmul(24, 24, 8)
small_ht = solve_hierarchical_tiling(
    small, MemoryHierarchy(capacities=(48, 192, 768)), budget="aggregate"
)
arrays = allocate_arrays(small, rng=np.random.default_rng(0))
fresh = {k: (np.zeros_like(v) if k == "C" else v.copy()) for k, v in arrays.items()}
expected = execute_reference(small, {k: v.copy() for k, v in fresh.items()})
got = run_generated(small, small_ht.levels[0].tile, fresh)
assert np.allclose(got, expected)
print("generated kernel verified against the reference executor")

print("\n=== Word-accurate traffic at every boundary (small instance) ===")
tiled = simulate_hierarchical_tiling_trace(small_ht)
untiled = simulate_hierarchy_trace(
    small, small_ht.hierarchy, tile=None, schedule="untiled"
)
print(f"  nested-tiled : {tiled.summary()}")
print(f"  untiled      : {untiled.summary()}")
assert tiled.boundaries[0].words <= untiled.boundaries[0].words
print("\nThe nested tiling keeps every boundary within a model constant of its")
print("own lower bound; the untiled schedule thrashes the innermost cache.")
