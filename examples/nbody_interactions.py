#!/usr/bin/env python
"""n-body pairwise interactions (§6.3): tilings, regimes, and real numpy runs.

Reproduces the paper's §6.3 example end to end:

1. the tile-size formula min(M^2, L1*M, L2*M, L1*L2) across regimes;
2. the small-footprint caveat (everything fits -> the formula's 'M' is
   not the real cost);
3. an actual blocked numpy n-body whose block sizes come from the LP,
   validated against the unblocked computation;
4. a word-accurate LRU simulation showing the tiled schedule moves
   fewer words than the untiled one on a real cache.

Run:  python examples/nbody_interactions.py
"""

import numpy as np

import repro
from repro.core.closed_forms import nbody_max_tile_size
from repro.kernels.tiled import blocked_nbody, naive_nbody
from repro.library.problems import nbody
from repro.util.rationals import pow_fraction

session = repro.api.Session()
M = 2**10

print("=== 1. Tile-size regimes:  min(M^2, L1*M, L2*M, L1*L2) ===")
for L1, L2, regime in [
    (2**8, 2**8, "both large -> M^2"),
    (2**3, 2**12, "L1 small  -> L1*M"),
    (2**12, 2**3, "L2 small  -> L2*M"),
    (2**4, 2**4, "fits      -> L1*L2"),
]:
    nest = nbody(L1, L2)
    k = repro.tile_exponent(nest, M)
    measured = pow_fraction(M, k)
    expected = nbody_max_tile_size(L1, L2, M)
    assert measured == float(expected)
    print(f"  L=({L1:>5},{L2:>5})  tile size = {expected:>8}   [{regime}]")

print("\n=== 2. The §6.3 caveat ===")
small = nbody(2**4, 2**4)
lb = repro.communication_lower_bound(small, M)
print(f"  formula term (M)        : {lb.hbl_words:.0f} words")
print(f"  true floor (footprint)  : {lb.footprint_words} words")
print(f"  fits in cache           : {lb.fits_in_cache()}")
assert lb.value == lb.footprint_words < M

print("\n=== 3. Blocked numpy n-body with LP block sizes ===")
L1 = L2 = 2**13
nest = nbody(L1, L2)
sol = session.tiling(nest, M, budget="aggregate")
b1, b2 = sol.tile.blocks
print(f"  problem {L1} x {L2}, cache {M} words -> blocks ({b1}, {b2})")
rng = np.random.default_rng(0)
P = rng.standard_normal(L1)
Q = rng.standard_normal(L2)
F_blocked = blocked_nbody(P, Q, b1, b2)
F_naive = naive_nbody(P, Q)
assert np.allclose(F_blocked, F_naive)
print(f"  blocked result matches unblocked: True "
      f"(max |diff| = {np.abs(F_blocked - F_naive).max():.2e})")

print("\n=== 4. Word-accurate LRU validation (small instance) ===")
nest_small = nbody(96, 96)
M_small = 64
machine = repro.MachineModel(cache_words=M_small)
sol_small = session.tiling(nest_small, M_small, budget="aggregate")
tiled = repro.run_trace_simulation(nest_small, machine, tile=sol_small.tile)
untiled = repro.run_trace_simulation(nest_small, machine, tile=None)
bound = repro.communication_lower_bound(nest_small, M_small)
print(f"  lower bound      : {bound.value:.0f} words")
print(f"  LRU, LP tiling   : {tiled.total_words} words")
print(f"  LRU, untiled     : {untiled.total_words} words")
assert tiled.total_words <= untiled.total_words
