#!/usr/bin/env python
"""Quickstart: bound + optimal tile for a loop nest, in ten lines.

Everything goes through one ``repro.api.Session`` — the same typed
façade behind the CLI and the ``repro-tile serve`` JSON endpoint.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

import repro

# A 1024 x 1024 x 16 matrix multiplication -- the "small loop bound"
# regime the paper targets (L3 << sqrt(M)), with a 64K-word cache.
nest = repro.parse_nest(
    "C[i,k] += A[i,j] * B[j,k]",
    bounds={"i": 1024, "j": 1024, "k": 16},
    name="skinny-matmul",
)
M = 2**16

session = repro.api.Session()
analysis = session.analysis(nest, cache_words=M)
print(analysis.summary())
print()

# The same query as a versioned service result (what /v1/analyze returns):
result = session.analyze(nest, cache_words=M)
print(f"service envelope          : kind={result.kind} schema_version="
      f"{result.schema_version} k_hat={result.fraction('k_hat')} "
      f"cache_hit={result.cache_hit}")
assert repro.api.Result.from_json(result.to_json()) == result  # lossless wire
print()

# The classical sqrt(M)-cube tiling would need k-blocks of 256 > 16:
# infeasible.  The paper's LP instead returns a feasible rectangle ...
# (loop order is first-appearance: i, k, j — look loops up by name).
blocks = analysis.tiling.tile.blocks
k_block = blocks[nest.loop_position("k")]
assert k_block <= 16
print(f"optimal integer tile      : {dict(zip(nest.loops, blocks))}")

# ... attaining the *stronger* small-bound lower bound exactly
# (Theorem 3: primal tiling LP == Theorem-2 bound):
assert analysis.certificate.tight
assert analysis.lower_bound.k_hat == 1 + Fraction(4, 16)  # 1 + beta_3
print(f"tile-size exponent k_hat  : {analysis.lower_bound.k_hat}  (= 1 + beta3)")
print(f"communication lower bound : {analysis.lower_bound.value:,.0f} words")

# The closed form as a function of problem shape (§7's piecewise claim):
pvf = repro.parametric_tile_exponent(nest)
print(f"closed form               : {pvf.render()}")

# Simulate the tiling in the two-level machine model:
machine = repro.MachineModel(cache_words=M)
practical = session.tiling(nest, M, budget="aggregate")  # executable budget
traffic = repro.best_order_traffic(nest, practical.tile, machine=machine)
naive = repro.simulate_untiled_traffic(nest, machine=machine)
print(f"simulated tiled traffic   : {traffic.total_words:,} words "
      f"({traffic.ratio_to(analysis.lower_bound.value):.2f}x bound)")
print(f"simulated untiled traffic : {naive.total_words:,} words "
      f"({naive.ratio_to(analysis.lower_bound.value):.2f}x bound)")
