#!/usr/bin/env python
"""Distributed matmul: rectangular processor grids (§7's extension).

The paper's discussion argues the memory model generalises to P
processors and that assigning each processor a *rectangular* block of
the iteration space is the right strategy.  This example sweeps P for
a large matmul, comparing:

* the optimal processor grid (exhaustive over factorizations),
* the log-space LP relaxation's prediction,
* naive 1-D row splits,
* the memory-dependent distributed lower bound.

Run:  python examples/distributed_matmul.py
"""

import repro
from repro.api import DistributedRequest
from repro.library.problems import matmul
from repro.parallel import lp_grid, one_dimensional_split, optimal_grid

L = 2**11
M_LOCAL = 2**13
nest = matmul(L, L, L)
session = repro.api.Session()

print(f"matmul {L}x{L}x{L}, local memory {M_LOCAL} words/processor\n")
header = (
    f"{'P':>5} {'grid':>10} {'LP mu':>15} {'words/proc':>12} "
    f"{'1D words/proc':>14} {'bound':>12} {'ratio':>6}"
)
print(header)
print("-" * len(header))

for P in (1, 2, 4, 8, 16, 32, 64, 128, 256):
    # The optimal-grid query goes through the service façade — the same
    # typed request /v1/distributed serves over HTTP.
    rep = session.distributed(
        DistributedRequest(nest=nest, processors=P, memory_words=M_LOCAL)
    ).detail
    bad = one_dimensional_split(nest, P, M_LOCAL)
    mu, _ = lp_grid(nest, P)
    mu_txt = ",".join(str(m) for m in mu)
    print(
        f"{P:>5} {'x'.join(map(str, rep.grid)):>10} {mu_txt:>15} "
        f"{rep.words_per_processor:>12,} {bad.words_per_processor:>14,} "
        f"{rep.lower_bound_words:>12,.0f} {rep.ratio:>6.2f}"
    )
    assert rep.words_per_processor <= bad.words_per_processor

print("-" * len(header))
print("\nObservations (the §7 claims):")
print(" * the optimal grid is (near-)cubic — a rectangular block per processor;")
print(" * 1-D splits stop scaling: their per-processor traffic saturates at the")
print("   full matrix size while grid traffic keeps falling;")
best = optimal_grid(nest, 64)
print(f" * at P=64 the optimal grid {best.grid} moves "
      f"{one_dimensional_split(nest, 64, M_LOCAL).words_per_processor / best.comm_words:.1f}x "
      "fewer words per processor than a row split;")
print(" * the measured traffic tracks the memory-dependent lower bound")
print("   (ratio column) within a small constant.")
